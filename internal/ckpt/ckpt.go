// Package ckpt is the durable-state layer: atomic snapshot files for
// everything the repo must not lose to a crash or SIGINT — trainer
// checkpoints, the persistent verdict cache, and saved models.
//
// Two guarantees, and only two:
//
//   - Atomicity. WriteFileAtomic writes to a temp file in the target
//     directory, fsyncs it, renames it over the destination, and
//     fsyncs the directory. Readers observe either the old file or the
//     new file, never a truncated hybrid — a crash mid-write cannot
//     corrupt a checkpoint that already exists.
//
//   - Integrity. Save wraps a JSON payload in a one-line envelope
//     header carrying a format magic, a version, a kind tag, and a
//     SHA-256 checksum of the payload. Load refuses anything whose
//     header, kind, or checksum does not match, so a corrupt or
//     hand-edited checkpoint fails loudly at load time instead of
//     panicking mid-run.
//
// What a checkpoint *means* (which fields make a resumed GRPO
// trajectory bit-identical) is the owning package's concern: grpo
// serializes trainer state, pipeline the curriculum state, vcache the
// verdict entries. ckpt only moves bytes durably.
//
// The package keeps process-wide counters (snapshots written, entries
// loaded, restore errors) that the serving layer exports as
// veriopt_ckpt_* metrics and the CLIs report on exit.
package ckpt

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// envelope is the one-line JSON header preceding a Save payload.
type envelope struct {
	Magic   string `json:"veriopt_ckpt"`
	Version int    `json:"version"`
	// Kind tags what the payload is (e.g. "curriculum", "model") so a
	// file of one kind cannot be loaded as another.
	Kind string `json:"kind"`
	// SHA256 is the hex checksum of the payload bytes that follow.
	SHA256 string `json:"sha256"`
	// Size is the payload length in bytes.
	Size int `json:"size"`
}

const (
	magic   = "v1"
	version = 1
)

// Package-wide durable-state counters, exported via Counters().
var (
	snapshotsWritten atomic.Uint64
	entriesLoaded    atomic.Uint64
	restoreErrors    atomic.Uint64
)

// CountSnapshot records one snapshot successfully written (called by
// the writers in this package and by vcache's snapshot path).
func CountSnapshot() { snapshotsWritten.Add(1) }

// CountEntriesLoaded records n entries restored from durable state.
func CountEntriesLoaded(n int) { entriesLoaded.Add(uint64(n)) }

// CountRestoreError records one failed restore attempt.
func CountRestoreError() { restoreErrors.Add(1) }

// Counters returns the process-wide durable-state counters under
// stable snake_case names for metrics exporters.
func Counters() map[string]uint64 {
	return map[string]uint64{
		"snapshots_written": snapshotsWritten.Load(),
		"entries_loaded":    entriesLoaded.Load(),
		"restore_errors":    restoreErrors.Load(),
	}
}

// WriteFileAtomic writes data to path atomically: temp file in the
// same directory, fsync, rename over path, fsync the directory. On
// any error the destination is untouched and the temp file removed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: fsync temp: %w", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: chmod temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	// Persist the rename itself. Best-effort: some filesystems refuse
	// directory fsync, and by this point the data is durable in the
	// file.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Save marshals v as JSON, wraps it in the checksummed envelope, and
// writes it atomically to path.
func Save(path, kind string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ckpt: marshal %s: %w", kind, err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(envelope{
		Magic:   magic,
		Version: version,
		Kind:    kind,
		SHA256:  hex.EncodeToString(sum[:]),
		Size:    len(payload),
	})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Grow(len(hdr) + 1 + len(payload) + 1)
	buf.Write(hdr)
	buf.WriteByte('\n')
	buf.Write(payload)
	buf.WriteByte('\n')
	if err := WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	CountSnapshot()
	return nil
}

// Load reads a Save-format file, validates the envelope and checksum,
// and unmarshals the payload into v. Every failure mode names the
// file and counts a restore error.
func Load(path, kind string, v any) error {
	if err := load(path, kind, v); err != nil {
		CountRestoreError()
		return err
	}
	return nil
}

func load(path, kind string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	hdrLine, err := r.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("ckpt: %s: read header: %w", path, err)
	}
	var hdr envelope
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return fmt.Errorf("ckpt: %s: bad header: %w", path, err)
	}
	if hdr.Magic != magic {
		return fmt.Errorf("ckpt: %s: not a veriopt checkpoint", path)
	}
	if hdr.Version != version {
		return fmt.Errorf("ckpt: %s: version %d, want %d", path, hdr.Version, version)
	}
	if hdr.Kind != kind {
		return fmt.Errorf("ckpt: %s: kind %q, want %q", path, hdr.Kind, kind)
	}
	payload := make([]byte, hdr.Size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("ckpt: %s: truncated payload: %w", path, err)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA256 {
		return fmt.Errorf("ckpt: %s: checksum mismatch (corrupt checkpoint)", path)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("ckpt: %s: decode %s payload: %w", path, kind, err)
	}
	return nil
}

// Exists reports whether a checkpoint file is present at path.
func Exists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}
