package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string    `json:"name"`
	Steps int       `json:"steps"`
	Xs    []float64 `json:"xs"`
}

func TestWriteFileAtomicOverwritesAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, []byte("old contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("contents = %q, want %q", got, "new")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "out.bin" {
			t.Fatalf("leftover file %q after atomic writes", e.Name())
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	in := payload{Name: "trainer", Steps: 17, Xs: []float64{1.5, -2.25, 0}}
	if err := Save(path, "test-state", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test-state", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Steps != in.Steps || len(out.Xs) != len(in.Xs) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	for i := range in.Xs {
		if out.Xs[i] != in.Xs[i] {
			t.Fatalf("Xs[%d] = %v, want %v", i, out.Xs[i], in.Xs[i])
		}
	}
}

func TestLoadRejectsWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Save(path, "kind-a", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	err := Load(path, "kind-b", &out)
	if err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("wrong-kind load error = %v, want kind mismatch", err)
	}
}

func TestLoadRejectsCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Save(path, "test-state", payload{Name: "x", Steps: 3}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte past the header line.
	nl := bytes.IndexByte(blob, '\n')
	blob[nl+2] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	err = Load(path, "test-state", &out)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt load error = %v, want checksum mismatch", err)
	}
}

func TestLoadRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a checkpoint at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test-state", &out); err == nil {
		t.Fatal("garbage file loaded without error")
	}
}

func TestCountersMoveOnSaveLoadAndError(t *testing.T) {
	before := Counters()
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := Save(path, "test-state", payload{}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "test-state", &out); err != nil {
		t.Fatal(err)
	}
	Load(path, "wrong-kind", &out) // counted restore error
	after := Counters()
	if after["snapshots_written"] <= before["snapshots_written"] {
		t.Error("snapshots_written did not advance")
	}
	if after["restore_errors"] <= before["restore_errors"] {
		t.Error("restore_errors did not advance")
	}
}

func TestExists(t *testing.T) {
	dir := t.TempDir()
	if Exists(filepath.Join(dir, "missing")) {
		t.Error("Exists true for missing file")
	}
	if Exists(dir) {
		t.Error("Exists true for a directory")
	}
	path := filepath.Join(dir, "f")
	os.WriteFile(path, []byte("x"), 0o644)
	if !Exists(path) {
		t.Error("Exists false for present file")
	}
}
