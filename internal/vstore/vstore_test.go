package vstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"veriopt/internal/alive"
	"veriopt/internal/vcache"
)

func tkey(i int) vcache.Key {
	return vcache.Key{Src: fmt.Sprintf("src-%d", i), Dst: "dst", Opts: alive.DefaultOptions()}
}

func tres(i int) alive.Result {
	return alive.Result{Verdict: alive.SemanticError, Diag: fmt.Sprintf("ERROR: Value mismatch %d", i),
		Counterexample: map[string]uint64{"x": uint64(i)}, SolverConflicts: 10 * i}
}

func sameResult(t *testing.T, got, want alive.Result) {
	t.Helper()
	if got.Verdict != want.Verdict || got.Diag != want.Diag ||
		got.SolverConflicts != want.SolverConflicts ||
		got.Counterexample["x"] != want.Counterexample["x"] {
		t.Fatalf("result = %+v, want %+v", got, want)
	}
}

func mustGet(t *testing.T, s *Store, k vcache.Key) alive.Result {
	t.Helper()
	res, ok, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !ok {
		t.Fatalf("Get(%q): miss, want hit", k.Src)
	}
	return res
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(tkey(i), tres(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		sameResult(t, mustGet(t, s, tkey(i)), tres(i))
	}
	if _, ok, err := s.Get(tkey(99)); err != nil || ok {
		t.Fatalf("absent key: ok=%v err=%v, want miss", ok, err)
	}
	st := s.Stats()
	if st.Entries != 10 || st.Appends != 10 || st.Hits != 10 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(tkey(i), tres(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 20 {
		t.Fatalf("entries after reopen = %d, want 20", st.Entries)
	}
	for i := 0; i < 20; i++ {
		sameResult(t, mustGet(t, s2, tkey(i)), tres(i))
	}
	// The reopened store is writable and its new appends persist too.
	if err := s2.Put(tkey(20), tres(20)); err != nil {
		t.Fatal(err)
	}
	sameResult(t, mustGet(t, s2, tkey(20)), tres(20))
}

func TestSupersedeKeepsNewestAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tkey(0), tres(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tkey(0), tres(2)); err != nil {
		t.Fatal(err)
	}
	sameResult(t, mustGet(t, s, tkey(0)), tres(2))
	st := s.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if st.DeadBytes == 0 {
		t.Fatal("superseded record left no dead bytes")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameResult(t, mustGet(t, s2, tkey(0)), tres(2))
	if st := s2.Stats(); st.Entries != 1 || st.DeadBytes == 0 {
		t.Fatalf("reopen stats: %+v", st)
	}
}

func TestTombstoneDeletesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tkey(0), tres(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tkey(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(tkey(0)); ok {
		t.Fatal("deleted key still served")
	}
	if st := s.Stats(); st.Entries != 0 || st.Tombstones != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get(tkey(0)); ok {
		t.Fatal("tombstone did not survive reopen")
	}
}

func TestCanceledVerdictsRefused(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(tkey(0), alive.CanceledResult(nil)); err == nil {
		t.Fatal("Canceled verdict persisted")
	}
	if st := s.Stats(); st.Appends != 0 || st.Entries != 0 {
		t.Fatalf("refused Put still touched the log: %+v", st)
	}
}

func TestRotationSpreadsSegmentsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold rotates on every append.
	s, err := Open(dir, Config{SegmentBytes: 1, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := s.Put(tkey(i), tres(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < n {
		t.Fatalf("segments = %d, want >= %d (rotate every append)", st.Segments, n)
	}
	for i := 0; i < n; i++ {
		sameResult(t, mustGet(t, s, tkey(i)), tres(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != n {
		t.Fatalf("entries after reopen = %d, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		sameResult(t, mustGet(t, s2, tkey(i)), tres(i))
	}
}

func TestCompactDropsDeadWeight(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentBytes: 1, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	// Write each key three times (two superseded copies each) plus one
	// deleted key; everything is sealed because each append rotates.
	const n = 6
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			if err := s.Put(tkey(i), tres(100*round+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Delete(tkey(0)); err != nil {
		t.Fatal(err)
	}

	before := s.Stats()
	res, ok, err := s.Compact()
	if err != nil || !ok {
		t.Fatalf("Compact: ok=%v err=%v", ok, err)
	}
	if res.Live != n-1 {
		t.Fatalf("compaction carried %d records, want %d", res.Live, n-1)
	}
	if res.Dropped == 0 || res.ReclaimedBytes <= 0 {
		t.Fatalf("compaction reclaimed nothing: %+v", res)
	}
	after := s.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("segments %d -> %d, want fewer", before.Segments, after.Segments)
	}
	if after.Entries != n-1 {
		t.Fatalf("entries after compact = %d, want %d", after.Entries, n-1)
	}
	for i := 1; i < n; i++ {
		sameResult(t, mustGet(t, s, tkey(i)), tres(200+i))
	}
	if _, ok, _ := s.Get(tkey(0)); ok {
		t.Fatal("tombstoned key resurrected by compaction")
	}
	// Old segment files are physically gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var vlogs int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".vlog") {
			vlogs++
		}
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("compaction left temp file %s", e.Name())
		}
	}
	if vlogs != after.Segments {
		t.Fatalf("%d .vlog files on disk, stats say %d segments", vlogs, after.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted store reopens to the same contents.
	s2, err := Open(dir, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != n-1 {
		t.Fatalf("entries after reopen = %d, want %d", st.Entries, n-1)
	}
	for i := 1; i < n; i++ {
		sameResult(t, mustGet(t, s2, tkey(i)), tres(200+i))
	}
}

func TestAutoCompactTriggersOnRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentBytes: 1, CompactMinDeadFrac: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Superseding the same key on every append makes almost every
	// sealed byte dead, so the rotation trigger fires immediately.
	for i := 0; i < 20; i++ {
		if err := s.Put(tkey(0), tres(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // waits for background compaction
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}

	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	sameResult(t, mustGet(t, s2, tkey(0)), tres(19))
}

func TestConcurrentReadersWriterAndCompaction(t *testing.T) {
	s, err := Open(t.TempDir(), Config{SegmentBytes: 512, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Put(tkey(i), tres(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers hammer the full key range while the writer supersedes and
	// compactions swap segments underneath them.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := tkey(i % n)
				res, ok, err := s.Get(k)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok && res.Verdict != alive.SemanticError {
					t.Errorf("wrong verdict %v", res.Verdict)
					return
				}
			}
		}()
	}
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for round := 1; round <= 8; round++ {
			for i := 0; i < n; i++ {
				if err := s.Put(tkey(i), tres(1000*round+i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
			if _, _, err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	<-writerDone
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := 0; i < n; i++ {
		sameResult(t, mustGet(t, s, tkey(i)), tres(8000+i))
	}
}

func TestStatsStringAndCounters(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(tkey(0), tres(0)); err != nil {
		t.Fatal(err)
	}
	mustGet(t, s, tkey(0))
	st := s.Stats()
	if got := st.String(); !strings.Contains(got, "1 entries") || !strings.Contains(got, "1 appends") {
		t.Fatalf("String() = %q", got)
	}
	c := st.Counters()
	for _, name := range []string{"appends", "appended_bytes", "tombstones", "gets", "hits",
		"misses", "syncs", "compactions", "reclaimed_bytes", "truncated_tails"} {
		if _, ok := c[name]; !ok {
			t.Fatalf("Counters() missing %q", name)
		}
	}
	if c["appends"] != 1 || c["hits"] != 1 {
		t.Fatalf("Counters() = %v", c)
	}
}

func TestClosedStoreRefusesAppends(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tkey(0), tres(0)); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

func TestFingerprintCollisionDegradesToMiss(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Force a collision by planting key A's record under key B's
	// fingerprint slot directly in the index.
	if err := s.Put(tkey(1), tres(1)); err != nil {
		t.Fatal(err)
	}
	hA := fingerprint(tkey(1))
	hB := fingerprint(tkey(2))
	s.mu.Lock()
	s.index[hB] = s.index[hA]
	s.mu.Unlock()
	// The stored record's full key disagrees with the queried key, so
	// the read reports a miss instead of key 1's verdict.
	if _, ok, err := s.Get(tkey(2)); err != nil || ok {
		t.Fatalf("collision read: ok=%v err=%v, want clean miss", ok, err)
	}
}

func TestManifestIsTheCommitPoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(tkey(0), tres(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Files the manifest does not own — crashed-compaction leftovers —
	// are removed on open and never replayed.
	orphanSeg := filepath.Join(dir, segmentName(77))
	orphanTmp := filepath.Join(dir, "compact-00000077.tmp")
	for _, p := range []string{orphanSeg, orphanTmp} {
		if err := os.WriteFile(p, []byte("garbage that would fail any scan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, p := range []string{orphanSeg, orphanTmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived open", filepath.Base(p))
		}
	}
	sameResult(t, mustGet(t, s2, tkey(0)), tres(0))
}
