package vstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"veriopt/internal/vcache"
)

// The crash suite simulates kills at the failure points the design
// guards: mid-append (torn tail on the active segment), mid-compaction
// (renamed-but-uncommitted segment, stray temp file), and plain bit
// rot. The contract under test: reopening loses at most the unsynced
// tail of the active segment, every surviving record passes its
// checksum, and corruption that cannot be a crash artifact (sealed
// segments) fails loudly instead of being guessed around.

// crashedStore builds a store with n records and simulated kill: the
// writer is abandoned without Close (handles leak until process exit,
// exactly like a kill -9), so nothing beyond what Put already synced
// reaches the manifest or an orderly shutdown path.
func crashedStore(t *testing.T, dir string, n int, cfg Config) {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(tkey(i), tres(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Abandoned, not closed: no final fsync, no manifest touch.
}

// activeSegmentPath returns the path of the manifest's active segment.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	seqs := s.segmentSeqs()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, segmentName(seqs[len(seqs)-1]))
}

func TestKillMidAppendTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	crashedStore(t, dir, 5, Config{})
	// Simulate the kill landing mid-write: a record header naming a
	// 4096-byte payload of which only 16 bytes hit the disk.
	path := activeSegmentPath(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, recordHeaderBytes+16)
	binary.LittleEndian.PutUint32(torn[0:4], 4096)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s.Close()
	if st := s.Stats(); st.TruncatedTails != 1 || st.Entries != 5 {
		t.Fatalf("stats after repair: %+v", st)
	}
	for i := 0; i < 5; i++ {
		sameResult(t, mustGet(t, s, tkey(i)), tres(i))
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The repaired store accepts new appends at the truncated offset.
	if err := s.Put(tkey(5), tres(5)); err != nil {
		t.Fatal(err)
	}
	sameResult(t, mustGet(t, s, tkey(5)), tres(5))
}

func TestBitFlipInActiveTailTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	crashedStore(t, dir, 5, Config{})
	path := activeSegmentPath(t, dir)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the LAST record: the checksum fails, the
	// scan stops there, and only that record is lost.
	blob[len(blob)-2] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen after tail bit flip: %v", err)
	}
	defer s.Close()
	st := s.Stats()
	if st.TruncatedTails != 1 {
		t.Fatalf("no tail repair recorded: %+v", st)
	}
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4 (only the flipped record lost)", st.Entries)
	}
	for i := 0; i < 4; i++ {
		sameResult(t, mustGet(t, s, tkey(i)), tres(i))
	}
	if _, ok, _ := s.Get(tkey(4)); ok {
		t.Fatal("corrupt record served")
	}
}

func TestBitFlipInSealedSegmentFailsOpenLoudly(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes: 1 seals a segment on every append, so record 0
	// lives in a sealed segment.
	s, err := Open(dir, Config{SegmentBytes: 1, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(tkey(i), tres(i)); err != nil {
			t.Fatal(err)
		}
	}
	seqs := s.segmentSeqs()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sealed := filepath.Join(dir, segmentName(seqs[0]))
	blob, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatalf("sealed segment %s empty", sealed)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(sealed, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Config{})
	if err == nil {
		t.Fatal("open succeeded over a corrupt sealed segment")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error does not name the corruption: %v", err)
	}
}

func TestKillMidCompactionLeavesOldSegmentSet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentBytes: 1, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			if err := s.Put(tkey(i), tres(100*round+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	nextSeq := s.nextSeq
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the two mid-compaction kill points. Before the rename:
	// a half-written temp file. After the rename but before the
	// manifest swap: a fully-written .vlog the manifest does not name.
	// Both must be discarded — the manifest still names the old set,
	// which remains complete and valid.
	tmp := filepath.Join(dir, "compact-99999999.tmp")
	if err := os.WriteFile(tmp, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	renamed := filepath.Join(dir, segmentName(nextSeq))
	rec, err := encodeRecord(record{Src: "ghost", Dst: "dst", Res: tres(999)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(renamed, rec, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen after mid-compaction crash: %v", err)
	}
	defer s2.Close()
	for _, p := range []string{tmp, renamed} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("crashed-compaction leftover %s survived open", filepath.Base(p))
		}
	}
	// All records intact at their newest versions; the uncommitted
	// ghost record is invisible.
	if st := s2.Stats(); st.Entries != n {
		t.Fatalf("entries = %d, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		sameResult(t, mustGet(t, s2, tkey(i)), tres(100+i))
	}
	if _, ok, _ := s2.Get(vcache.Key{Src: "ghost", Dst: "dst"}); ok {
		t.Fatal("uncommitted compaction output was replayed")
	}
}

func TestCrashAfterCompactionCommitKeepsNewSet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{SegmentBytes: 1, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			if err := s.Put(tkey(i), tres(100*round+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok, err := s.Compact(); err != nil || !ok {
		t.Fatalf("Compact: ok=%v err=%v", ok, err)
	}
	// Abandon without Close: a kill right after the manifest swap.
	s2, err := Open(dir, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen after committed compaction: %v", err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Entries != n {
		t.Fatalf("entries = %d, want %d", st.Entries, n)
	}
	for i := 0; i < n; i++ {
		sameResult(t, mustGet(t, s2, tkey(i)), tres(100+i))
	}
}

// TestEverySurvivingRecordPassesChecksum is the sweep form of the
// crash contract: after a torn-tail repair, re-scanning every byte the
// store kept must decode cleanly.
func TestEverySurvivingRecordPassesChecksum(t *testing.T) {
	dir := t.TempDir()
	crashedStore(t, dir, 10, Config{SegmentBytes: 512, DisableAutoCompact: true})
	path := activeSegmentPath(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // not even a whole header
	f.Close()

	s, err := Open(dir, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var records int
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".vlog") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(blob); {
			_, n, err := decodeRecord(blob[off:])
			if err != nil {
				t.Fatalf("%s offset %d: surviving record fails decode: %v", e.Name(), off, err)
			}
			off += n
			records++
		}
	}
	if records != 10 {
		t.Fatalf("swept %d records, want 10", records)
	}
}
