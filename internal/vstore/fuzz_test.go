package vstore

import (
	"bytes"
	"testing"

	"veriopt/internal/alive"
)

// FuzzRecordDecode drives decodeRecord with arbitrary bytes plus
// mutations of valid encodings. The invariants: decoding never
// panics, a record that decodes equals what a re-encode of it would
// contain (the CRC passed, so the payload is bit-exact), and any
// truncation or bit flip of a valid record is rejected with an error
// — corrupt data must never be served as a verdict.
func FuzzRecordDecode(f *testing.F) {
	valid, err := encodeRecord(record{
		Src:  "define i32 @src(i32 %x) { %r = add i32 %x, 0 ret i32 %r }",
		Dst:  "define i32 @tgt(i32 %x) { ret i32 %x }",
		Opts: alive.DefaultOptions(),
		Res:  alive.Result{Verdict: alive.Equivalent, SolverConflicts: 42},
	})
	if err != nil {
		f.Fatal(err)
	}
	tomb, err := encodeRecord(record{Src: "a", Dst: "b", Tomb: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(tomb)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])           // truncated payload
	f.Add(valid[:recordHeaderBytes-1])    // truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // absurd length prefix
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return // rejected, as corrupt input must be
		}
		if n < recordHeaderBytes || n > len(data) {
			t.Fatalf("decoded length %d out of bounds (input %d bytes)", n, len(data))
		}
		// A record that decoded passed its checksum; re-encoding it must
		// reproduce the exact payload bytes.
		re, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		if !bytes.Equal(re[recordHeaderBytes:], data[recordHeaderBytes:n]) {
			t.Fatalf("decode/encode payload mismatch")
		}
	})
}

// TestFuzzSeedsRejectCorruption pins the corpus expectations outside
// fuzz mode, so plain `go test` exercises the rejection paths too.
func TestFuzzSeedsRejectCorruption(t *testing.T) {
	valid, err := encodeRecord(record{Src: "s", Dst: "d", Opts: alive.DefaultOptions(),
		Res: alive.Result{Verdict: alive.Equivalent}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeRecord(valid); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"truncated header":  valid[:recordHeaderBytes-1],
		"truncated payload": valid[:len(valid)-1],
		"absurd length":     bytes.Repeat([]byte{0xff}, 64),
	}
	for name, data := range cases {
		if _, _, err := decodeRecord(data); err == nil {
			t.Errorf("%s: corrupt input decoded without error", name)
		}
	}
	// Every single-bit payload flip must fail the checksum.
	for i := recordHeaderBytes; i < len(valid); i++ {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0x01
		if _, _, err := decodeRecord(mut); err == nil {
			t.Errorf("bit flip at offset %d decoded without error", i)
		}
	}
}
