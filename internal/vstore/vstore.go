// Package vstore is the cold tier of the verdict storage spine: a
// log-structured, crash-safe, on-disk verdict store that
// internal/vcache overflows into and warm-starts from. Where the old
// persistence path was a load-at-boot/flush-on-exit JSONL snapshot —
// capped by RAM, rewritten O(n) on every flush, and lost on a crash
// between flushes — vstore appends each verdict once, durably, as it
// is produced.
//
// Layout: a store directory holds numbered append-only segment files
// (seg-NNNNNNNN.vlog) of checksummed, length-prefixed records (see
// record.go), plus a MANIFEST written atomically through internal/ckpt
// that fixes the segment replay order. The newest segment is the
// active one; all writes append to it, and it rotates at
// Config.SegmentBytes. Older (sealed) segments are immutable, which is
// what makes concurrent reads trivially safe against the single
// writer.
//
// Crash safety:
//
//   - Appends are acknowledged into the OS immediately and fsynced
//     every Config.SyncEvery appends (and on Sync/Close). A crash loses
//     at most the unsynced tail of the active segment; on reopen the
//     torn tail is detected by length/checksum validation and truncated
//     away. A record that fails its checksum is never served.
//   - Compaction writes a fresh segment to a temp file, fsyncs, renames
//     it into place, and only then swaps the MANIFEST atomically. A
//     crash at any point leaves either the old segment set or the new
//     one; orphan files not named by the MANIFEST are deleted on open.
//   - Sealed segments are never modified, so corruption found in one is
//     not a crash artifact — Open fails loudly instead of guessing.
//
// The in-memory index maps a 32-byte key fingerprint to the newest
// record location; superseded and tombstoned records are dead weight
// on disk until compaction drops them. Reads verify the record
// checksum and compare the stored key, so a fingerprint collision
// degrades to a miss, never a wrong verdict.
//
// Invariant carried over from the snapshot era: Canceled verdicts are
// transient by contract and are never persisted — Put refuses them.
//
// A Store assumes single-process ownership of its directory (one
// writer, any number of readers in the same process). It implements
// vcache.Backing, which is how the hot tier demotes into and promotes
// out of it.
package vstore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"veriopt/internal/alive"
	"veriopt/internal/ckpt"
	"veriopt/internal/vcache"
)

// Defaults for the zero Config.
const (
	// DefaultSegmentBytes is the rotation threshold for the active
	// segment. Small enough that compaction works in modest units,
	// large enough that a training run stays in a handful of segments.
	DefaultSegmentBytes = 8 << 20
	// DefaultSyncEvery is the fsync cadence in appends. It bounds the
	// crash-loss window to a few dozen verdicts while keeping append
	// cost amortized; 1 fsyncs every append.
	DefaultSyncEvery = 32
	// DefaultCompactMinDeadFrac is the dead-byte fraction of sealed
	// segments above which rotation triggers a background compaction.
	DefaultCompactMinDeadFrac = 0.5
)

const manifestName = "MANIFEST"

// Config sizes a Store. The zero value selects the defaults above.
type Config struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// size (<= 0 selects DefaultSegmentBytes).
	SegmentBytes int64
	// SyncEvery fsyncs the active segment after this many appends
	// (<= 0 selects DefaultSyncEvery; 1 = every append). Sync and
	// Close always flush the tail regardless.
	SyncEvery int
	// CompactMinDeadFrac triggers background compaction after a
	// rotation when sealed segments carry at least this fraction of
	// dead bytes (<= 0 selects DefaultCompactMinDeadFrac).
	CompactMinDeadFrac float64
	// DisableAutoCompact turns off the rotation-triggered background
	// compaction; Compact can still be called explicitly (the
	// `veriopt cache compact` admin path, tests).
	DisableAutoCompact bool
}

// manifest is the atomically-swapped source of truth for the segment
// set and its replay order. It is written through ckpt.Save, so it
// inherits the checksummed-envelope + temp/fsync/rename discipline.
type manifest struct {
	Version int `json:"version"`
	// Segments lists segment sequence numbers in replay order; the
	// last entry is the active segment. Replay order is what makes
	// last-writer-wins recovery correct, so it is recorded explicitly
	// rather than inferred from file names.
	Segments []uint64 `json:"segments"`
	// NextSeq is the next unused sequence number.
	NextSeq uint64 `json:"next_seq"`
}

const (
	manifestKind    = "vstore-manifest"
	manifestVersion = 1
)

// recloc locates one record: segment sequence number, byte offset, and
// total record length (header included).
type recloc struct {
	seq uint64
	off int64
	n   uint32
}

// segment is one on-disk log file. Sealed segments keep only the read
// handle; the active segment also holds the write handle.
type segment struct {
	seq  uint64
	path string
	r    *os.File // ReadAt handle, safe for concurrent readers
	w    *os.File // append handle, active segment only
	size int64

	// live/dead byte and record accounting, guarded by Store.mu. Dead
	// weight is what compaction reclaims.
	liveBytes, deadBytes int64
	liveRecs, deadRecs   int64
}

// Store is the on-disk verdict store. Construct with Open; all methods
// are safe for concurrent use. Reads take a shared lock and pread from
// immutable offsets; writes are serialized by a single writer lock.
type Store struct {
	dir string
	cfg Config

	// wmu serializes all mutation: Put, Delete, Sync, rotation, the
	// compaction swap, and Close.
	wmu sync.Mutex
	// mu guards the index and segment table for readers.
	mu    sync.RWMutex
	index map[[32]byte]recloc
	segs  map[uint64]*segment
	order []uint64 // replay order; last = active

	nextSeq  uint64
	unsynced int
	closing  atomic.Bool

	compacting atomic.Bool
	compactWG  sync.WaitGroup

	// counters
	appends        atomic.Uint64
	appendedBytes  atomic.Uint64
	tombstones     atomic.Uint64
	gets           atomic.Uint64
	hits           atomic.Uint64
	misses         atomic.Uint64
	syncs          atomic.Uint64
	compactions    atomic.Uint64
	reclaimedBytes atomic.Uint64
	truncatedTails atomic.Uint64
	compactPauseNs atomic.Int64
}

// Store implements the hot tier's backing interface.
var _ vcache.Backing = (*Store)(nil)

func segmentName(seq uint64) string { return fmt.Sprintf("seg-%08d.vlog", seq) }

// Open opens (or initializes) the store in dir, replaying every
// segment named by the MANIFEST to rebuild the index. A torn tail on
// the active segment — the signature of a crash between fsyncs — is
// truncated away; corruption anywhere else fails loudly. Files in dir
// that the MANIFEST does not name (crashed-compaction leftovers,
// checkpoint temp files) are removed.
func Open(dir string, cfg Config) (*Store, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = DefaultSyncEvery
	}
	if cfg.CompactMinDeadFrac <= 0 {
		cfg.CompactMinDeadFrac = DefaultCompactMinDeadFrac
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vstore: create dir: %w", err)
	}
	s := &Store{
		dir:   dir,
		cfg:   cfg,
		index: make(map[[32]byte]recloc),
		segs:  make(map[uint64]*segment),
	}

	mpath := filepath.Join(dir, manifestName)
	var m manifest
	if ckpt.Exists(mpath) {
		if err := ckpt.Load(mpath, manifestKind, &m); err != nil {
			return nil, fmt.Errorf("vstore: %w", err)
		}
		if m.Version != manifestVersion {
			return nil, fmt.Errorf("vstore: manifest version %d, want %d", m.Version, manifestVersion)
		}
	} else {
		m = manifest{Version: manifestVersion, Segments: []uint64{1}, NextSeq: 2}
		if err := s.createSegmentFile(1); err != nil {
			return nil, err
		}
		if err := ckpt.Save(mpath, manifestKind, m); err != nil {
			return nil, err
		}
	}
	s.order = append(s.order, m.Segments...)
	s.nextSeq = m.NextSeq
	for _, seq := range s.order {
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}

	if err := s.removeOrphans(); err != nil {
		return nil, err
	}

	for i, seq := range s.order {
		last := i == len(s.order)-1
		if err := s.openAndReplay(seq, last); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	return s, nil
}

// createSegmentFile creates an empty segment file and persists its
// existence (fsync file and directory) before it is ever named by a
// manifest.
func (s *Store) createSegmentFile(seq uint64) error {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("vstore: create segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("vstore: fsync new segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(s.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best-effort, matching ckpt's posture
	}
	d.Sync()
	d.Close()
	return nil
}

// removeOrphans deletes files the manifest does not own: segments left
// by a crash between a compaction's rename and its manifest swap, and
// stray temp files. They are dead by construction — the manifest is
// the commit point.
func (s *Store) removeOrphans() error {
	owned := make(map[string]bool, len(s.order)+1)
	owned[manifestName] = true
	for _, seq := range s.order {
		owned[segmentName(seq)] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("vstore: scan dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || owned[name] {
			continue
		}
		if strings.HasSuffix(name, ".vlog") || strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	return nil
}

// openAndReplay opens segment seq and scans its records into the
// index. For the active (last) segment a decode failure marks a torn
// tail: everything before it is kept, the tail is truncated, and the
// store stays writable. For sealed segments — immutable since they
// were fsynced — any decode failure is corruption and aborts the open.
func (s *Store) openAndReplay(seq uint64, active bool) error {
	path := filepath.Join(s.dir, segmentName(seq))
	r, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("vstore: open segment %s: %w", segmentName(seq), err)
	}
	seg := &segment{seq: seq, path: path, r: r}

	br := bufio.NewReaderSize(r, 1<<20)
	var off int64
	hdr := make([]byte, recordHeaderBytes)
	var scanErr error
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				break
			}
			scanErr = fmt.Errorf("truncated record header: %w", err)
			break
		}
		// Re-decode through the shared path so scan and read agree on
		// every validity rule.
		n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
		if recordHeaderBytes+n > maxRecordBytes {
			scanErr = fmt.Errorf("record length %d exceeds bound", n)
			break
		}
		buf := make([]byte, recordHeaderBytes+n)
		copy(buf, hdr)
		if _, err := io.ReadFull(br, buf[recordHeaderBytes:]); err != nil {
			scanErr = fmt.Errorf("truncated record payload: %w", err)
			break
		}
		rec, total, err := decodeRecord(buf)
		if err != nil {
			scanErr = err
			break
		}
		s.replay(seg, rec, recloc{seq: seq, off: off, n: uint32(total)})
		off += int64(total)
	}
	seg.size = off

	if scanErr != nil {
		if !active {
			r.Close()
			return fmt.Errorf("vstore: sealed segment %s corrupt at offset %d: %w", segmentName(seq), off, scanErr)
		}
		// Torn tail on the active segment: the crash contract. Truncate
		// to the last whole record and continue.
		if err := os.Truncate(path, off); err != nil {
			r.Close()
			return fmt.Errorf("vstore: truncate torn tail of %s: %w", segmentName(seq), err)
		}
		s.truncatedTails.Add(1)
	}

	if active {
		w, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			r.Close()
			return fmt.Errorf("vstore: open active segment for append: %w", err)
		}
		seg.w = w
	}
	s.segs[seq] = seg
	return nil
}

// replay applies one scanned record to the index and the live/dead
// accounting. Callers hold no locks (open) or both locks (compaction
// swap never replays; this is open-time only).
func (s *Store) replay(seg *segment, rec record, loc recloc) {
	h := fingerprint(rec.key())
	if old, ok := s.index[h]; ok {
		if oseg := s.segs[old.seq]; oseg != nil {
			oseg.liveBytes -= int64(old.n)
			oseg.deadBytes += int64(old.n)
			oseg.liveRecs--
			oseg.deadRecs++
		} else if old.seq == seg.seq {
			seg.liveBytes -= int64(old.n)
			seg.deadBytes += int64(old.n)
			seg.liveRecs--
			seg.deadRecs++
		}
	}
	if rec.Tomb {
		delete(s.index, h)
		seg.deadBytes += int64(loc.n)
		seg.deadRecs++
		return
	}
	s.index[h] = loc
	seg.liveBytes += int64(loc.n)
	seg.liveRecs++
}

// active returns the write-side segment. Callers hold wmu.
func (s *Store) active() *segment { return s.segs[s.order[len(s.order)-1]] }

// Put appends a verdict for k, superseding any earlier record. It
// refuses Canceled results: they are transient by contract and must
// never be persisted.
func (s *Store) Put(k vcache.Key, res alive.Result) error {
	if res.Canceled {
		return fmt.Errorf("vstore: refusing to persist a Canceled verdict")
	}
	return s.append(record{Src: k.Src, Dst: k.Dst, Opts: k.Opts, Res: res})
}

// Delete appends a tombstone for k. Deleting an absent key is a no-op
// that still writes the tombstone (idempotent by replay).
func (s *Store) Delete(k vcache.Key) error {
	return s.append(record{Src: k.Src, Dst: k.Dst, Opts: k.Opts, Tomb: true})
}

func (s *Store) append(rec record) error {
	buf, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	h := fingerprint(rec.key())

	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closing.Load() {
		return fmt.Errorf("vstore: store is closed")
	}
	seg := s.active()
	off := seg.size
	if _, err := seg.w.Write(buf); err != nil {
		// A partial write leaves a torn tail exactly like a crash
		// would; reopening repairs it. Refuse further appends at this
		// offset by not advancing size only on full success.
		return fmt.Errorf("vstore: append: %w", err)
	}
	seg.size = off + int64(len(buf))
	loc := recloc{seq: seg.seq, off: off, n: uint32(len(buf))}

	s.mu.Lock()
	if old, ok := s.index[h]; ok {
		if oseg := s.segs[old.seq]; oseg != nil {
			oseg.liveBytes -= int64(old.n)
			oseg.deadBytes += int64(old.n)
			oseg.liveRecs--
			oseg.deadRecs++
		}
	}
	if rec.Tomb {
		delete(s.index, h)
		seg.deadBytes += int64(len(buf))
		seg.deadRecs++
	} else {
		s.index[h] = loc
		seg.liveBytes += int64(len(buf))
		seg.liveRecs++
	}
	s.mu.Unlock()

	s.appends.Add(1)
	s.appendedBytes.Add(uint64(len(buf)))
	if rec.Tomb {
		s.tombstones.Add(1)
	}

	s.unsynced++
	if s.unsynced >= s.cfg.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if seg.size >= s.cfg.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the stored verdict for k. A fingerprint collision or a
// read raced against a compaction swap retries against the fresh
// index; a record that fails its checksum is never returned.
func (s *Store) Get(k vcache.Key) (alive.Result, bool, error) {
	s.gets.Add(1)
	h := fingerprint(k)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		s.mu.RLock()
		loc, ok := s.index[h]
		var seg *segment
		if ok {
			seg = s.segs[loc.seq]
		}
		s.mu.RUnlock()
		if !ok || seg == nil {
			s.misses.Add(1)
			return alive.Result{}, false, nil
		}
		buf := make([]byte, loc.n)
		if _, err := seg.r.ReadAt(buf, loc.off); err != nil {
			// The segment may have been compacted away between the
			// lookup and the read; retry re-resolves the location.
			lastErr = err
			continue
		}
		rec, _, err := decodeRecord(buf)
		if err != nil {
			lastErr = err
			continue
		}
		if rec.Tomb || rec.key() != k {
			// Tombstones never stay indexed, so this is a fingerprint
			// collision: the stored record belongs to a different key.
			s.misses.Add(1)
			return alive.Result{}, false, nil
		}
		s.hits.Add(1)
		return rec.Res, true, nil
	}
	s.misses.Add(1)
	return alive.Result{}, false, fmt.Errorf("vstore: read record: %w", lastErr)
}

// Sync flushes the active segment's unsynced tail to disk.
func (s *Store) Sync() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.unsynced == 0 {
		return nil
	}
	seg := s.active()
	if seg.w == nil {
		return nil
	}
	if err := seg.w.Sync(); err != nil {
		return fmt.Errorf("vstore: fsync: %w", err)
	}
	s.unsynced = 0
	s.syncs.Add(1)
	return nil
}

// rotateLocked seals the active segment and opens a fresh one. The new
// segment file exists (and is fsynced) before the manifest names it,
// so a crash at any interleaving reopens cleanly. Callers hold wmu.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	seq := s.nextSeq
	if err := s.createSegmentFile(seq); err != nil {
		return err
	}
	s.nextSeq++
	order := append(append([]uint64{}, s.order...), seq)
	if err := s.saveManifest(order); err != nil {
		return err
	}
	path := filepath.Join(s.dir, segmentName(seq))
	r, err := os.Open(path)
	if err != nil {
		return err
	}
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		r.Close()
		return err
	}
	old := s.active()
	old.w.Close()
	old.w = nil

	s.mu.Lock()
	s.segs[seq] = &segment{seq: seq, path: path, r: r, w: w}
	s.order = order
	s.mu.Unlock()

	if !s.cfg.DisableAutoCompact && s.sealedDeadFrac() >= s.cfg.CompactMinDeadFrac {
		s.startBackgroundCompact()
	}
	return nil
}

// sealedDeadFrac reports the dead-byte fraction across sealed
// segments.
func (s *Store) sealedDeadFrac() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var live, dead int64
	for _, seq := range s.order[:len(s.order)-1] {
		seg := s.segs[seq]
		live += seg.liveBytes
		dead += seg.deadBytes
	}
	if live+dead == 0 {
		return 0
	}
	return float64(dead) / float64(live+dead)
}

func (s *Store) saveManifest(order []uint64) error {
	return ckpt.Save(filepath.Join(s.dir, manifestName), manifestKind,
		manifest{Version: manifestVersion, Segments: order, NextSeq: s.nextSeq})
}

// Close syncs the tail and releases every file handle. Waits for any
// background compaction to finish first.
func (s *Store) Close() error {
	s.closing.Store(true)
	s.compactWG.Wait()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	err := s.syncLocked()
	s.closeAll()
	return err
}

func (s *Store) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		if seg.r != nil {
			seg.r.Close()
		}
		if seg.w != nil {
			seg.w.Close()
		}
	}
}

// Stats is a point-in-time snapshot of the store's counters and
// gauges.
type Stats struct {
	// Gauges.
	Segments  int
	Entries   int
	LiveBytes int64
	DeadBytes int64
	// Counters.
	Appends        uint64
	AppendedBytes  uint64
	Tombstones     uint64
	Gets           uint64
	Hits           uint64
	Misses         uint64
	Syncs          uint64
	Compactions    uint64
	ReclaimedBytes uint64
	TruncatedTails uint64
	// CompactPause is cumulative writer-visible pause spent inside
	// compaction swaps.
	CompactPause time.Duration
}

// Counters returns the snapshot's monotonic counters under stable
// snake_case names for metrics exporters; gauges are excluded.
func (s Stats) Counters() map[string]uint64 {
	return map[string]uint64{
		"appends":         s.Appends,
		"appended_bytes":  s.AppendedBytes,
		"tombstones":      s.Tombstones,
		"gets":            s.Gets,
		"hits":            s.Hits,
		"misses":          s.Misses,
		"syncs":           s.Syncs,
		"compactions":     s.Compactions,
		"reclaimed_bytes": s.ReclaimedBytes,
		"truncated_tails": s.TruncatedTails,
	}
}

// String renders the snapshot for logs and the cache admin CLI.
func (s Stats) String() string {
	return fmt.Sprintf("vstore: %d entries in %d segments (%d live / %d dead bytes), %d appends, %d gets (%d hits), %d syncs, %d compactions (%d bytes reclaimed, %v pause), %d torn tails repaired",
		s.Entries, s.Segments, s.LiveBytes, s.DeadBytes,
		s.Appends, s.Gets, s.Hits, s.Syncs,
		s.Compactions, s.ReclaimedBytes, s.CompactPause.Round(time.Millisecond),
		s.TruncatedTails)
}

// Stats returns a snapshot of the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Segments: len(s.order),
		Entries:  len(s.index),
	}
	for _, seg := range s.segs {
		st.LiveBytes += seg.liveBytes
		st.DeadBytes += seg.deadBytes
	}
	s.mu.RUnlock()
	st.Appends = s.appends.Load()
	st.AppendedBytes = s.appendedBytes.Load()
	st.Tombstones = s.tombstones.Load()
	st.Gets = s.gets.Load()
	st.Hits = s.hits.Load()
	st.Misses = s.misses.Load()
	st.Syncs = s.syncs.Load()
	st.Compactions = s.compactions.Load()
	st.ReclaimedBytes = s.reclaimedBytes.Load()
	st.TruncatedTails = s.truncatedTails.Load()
	st.CompactPause = time.Duration(s.compactPauseNs.Load())
	return st
}

// segmentSeqs returns the current replay order (tests, admin stat).
func (s *Store) segmentSeqs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]uint64{}, s.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
