package vstore

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"veriopt/internal/alive"
	"veriopt/internal/vcache"
)

// Store benchmark: append throughput, read-hit and read-miss latency,
// reopen (replay) wall, and the writer-visible compaction pause.
// `make bench-store` runs TestStoreBench with BENCH_VSTORE_OUT set and
// records the measured numbers in BENCH_vstore.json (quoted in
// EXPERIMENTS.md). Under plain `go test` the workload shrinks and
// nothing is written — tier-1 must not fail on a loaded machine.

// benchKey builds a key shaped like real traffic: function-sized texts
// (a few hundred bytes), unique per i.
func benchKey(i int) vcache.Key {
	src := fmt.Sprintf(`define i32 @f_%d(i32 noundef %%0) {
  %%2 = add i32 %%0, %d
  %%3 = mul i32 %%2, 3
  %%4 = sub i32 %%3, %d
  %%5 = xor i32 %%4, 255
  ret i32 %%5
}`, i, i, 2*i)
	tgt := fmt.Sprintf(`define i32 @f_%d(i32 noundef %%0) {
  %%2 = mul i32 %%0, 3
  %%3 = add i32 %%2, %d
  %%4 = xor i32 %%3, 255
  ret i32 %%4
}`, i, i)
	return vcache.Key{Src: src, Dst: tgt, Opts: alive.DefaultOptions()}
}

func benchRes(i int) alive.Result {
	return alive.Result{Verdict: alive.Equivalent, SolverConflicts: i % 977}
}

func TestStoreBench(t *testing.T) {
	out := os.Getenv("BENCH_VSTORE_OUT")
	n := 2_000
	if out != "" {
		n = 50_000
	}
	dir := t.TempDir()
	s, err := Open(dir, Config{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}

	// Append phase: n unique verdicts.
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := s.Put(benchKey(i), benchRes(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	appendWall := time.Since(t0)
	bytesAppended := s.Stats().AppendedBytes

	// Read phases: hits over the live set, misses over absent keys.
	const reads = 10_000
	t0 = time.Now()
	for i := 0; i < reads; i++ {
		if _, ok, err := s.Get(benchKey(i % n)); err != nil || !ok {
			t.Fatalf("read hit %d: ok=%v err=%v", i, ok, err)
		}
	}
	hitWall := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < reads; i++ {
		if _, ok, err := s.Get(benchKey(n + i)); err != nil || ok {
			t.Fatalf("read miss %d: ok=%v err=%v", i, ok, err)
		}
	}
	missWall := time.Since(t0)

	// Supersede half the records, then compact; the pause is the
	// writer-visible stall, not the copy.
	for i := 0; i < n/2; i++ {
		if err := s.Put(benchKey(i), benchRes(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	res, ok, err := s.Compact()
	if err != nil || !ok {
		t.Fatalf("Compact: ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen phase: full replay of the compacted store.
	t0 = time.Now()
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reopenWall := time.Since(t0)
	if st := s2.Stats(); st.Entries != n {
		t.Fatalf("entries after reopen = %d, want %d", st.Entries, n)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	appendsPerSec := float64(n) / appendWall.Seconds()
	t.Logf("append:  %d records in %v (%.0f/s, %.1f MB/s)", n, appendWall,
		appendsPerSec, float64(bytesAppended)/appendWall.Seconds()/1e6)
	t.Logf("read:    hit %v/op, miss %v/op", hitWall/reads, missWall/reads)
	t.Logf("compact: %d segments, %d bytes reclaimed, %v writer pause", res.SegmentsIn, res.ReclaimedBytes, res.Pause)
	t.Logf("reopen:  %v for %d records", reopenWall, n)

	if out == "" {
		return
	}
	doc := map[string]any{
		"records":                 n,
		"append_wall_ns":          appendWall.Nanoseconds(),
		"appends_per_sec":         appendsPerSec,
		"appended_bytes":          bytesAppended,
		"read_hit_ns_per_op":      (hitWall / reads).Nanoseconds(),
		"read_miss_ns_per_op":     (missWall / reads).Nanoseconds(),
		"compact_segments_in":     res.SegmentsIn,
		"compact_reclaimed_bytes": res.ReclaimedBytes,
		"compact_pause_ns":        res.Pause.Nanoseconds(),
		"reopen_wall_ns":          reopenWall.Nanoseconds(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
