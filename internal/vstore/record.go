package vstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"veriopt/internal/alive"
	"veriopt/internal/vcache"
)

// On-disk record layout, little-endian:
//
//	[4B payload length n][4B CRC-32C of payload][n bytes JSON payload]
//
// The CRC covers the payload only; a corrupt length field is caught by
// the maxRecordBytes bound or by the CRC of whatever bytes it selects.
// Records never span segments and are immutable once appended — an
// update is a new record for the same key, a delete is a tombstone.

const (
	// recordHeaderBytes is the fixed prefix before the payload.
	recordHeaderBytes = 8
	// maxRecordBytes bounds a single record (header + payload). It
	// exists so a corrupt or adversarial length prefix can never drive
	// a multi-gigabyte allocation: decoding fails loudly instead.
	maxRecordBytes = 16 << 20
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is the JSON payload of one stored verdict (or tombstone). It
// carries the full key, not just its fingerprint, so reads can reject
// fingerprint collisions and a store is recoverable from segments
// alone.
type record struct {
	Src  string        `json:"src"`
	Dst  string        `json:"dst"`
	Opts alive.Options `json:"opts"`
	Res  alive.Result  `json:"res"`
	// Tomb marks a deletion: replaying it removes the key.
	Tomb bool `json:"tomb,omitempty"`
}

func (r record) key() vcache.Key {
	return vcache.Key{Src: r.Src, Dst: r.Dst, Opts: r.Opts}
}

// fingerprint condenses a key to the fixed-size index form — the
// shared vcache.Key.Fingerprint, so the store's index and the cluster
// coordinator's hash ring agree on every key's identity. Collisions
// are handled at read time by comparing the record's stored key.
func fingerprint(k vcache.Key) [sha256.Size]byte {
	return k.Fingerprint()
}

// encodeRecord renders rec in the on-disk layout.
func encodeRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("vstore: marshal record: %w", err)
	}
	if recordHeaderBytes+len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("vstore: record %d bytes exceeds %d-byte bound", recordHeaderBytes+len(payload), maxRecordBytes)
	}
	buf := make([]byte, recordHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[recordHeaderBytes:], payload)
	return buf, nil
}

// decodeRecord parses one record from the front of data, returning the
// record and the total bytes it occupied. Truncated input, an
// out-of-bounds length, a checksum mismatch, or malformed JSON all
// return an error — never a panic, and never a record whose payload
// did not pass its checksum.
func decodeRecord(data []byte) (record, int, error) {
	var rec record
	if len(data) < recordHeaderBytes {
		return rec, 0, fmt.Errorf("vstore: truncated record header (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if recordHeaderBytes+n > maxRecordBytes {
		return rec, 0, fmt.Errorf("vstore: record length %d exceeds %d-byte bound", n, maxRecordBytes)
	}
	if len(data) < recordHeaderBytes+n {
		return rec, 0, fmt.Errorf("vstore: truncated record payload (%d of %d bytes)", len(data)-recordHeaderBytes, n)
	}
	payload := data[recordHeaderBytes : recordHeaderBytes+n]
	want := binary.LittleEndian.Uint32(data[4:8])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return rec, 0, fmt.Errorf("vstore: record checksum mismatch (got %08x, want %08x)", got, want)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, fmt.Errorf("vstore: decode record payload: %w", err)
	}
	return rec, recordHeaderBytes + n, nil
}
