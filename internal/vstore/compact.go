package vstore

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Compaction rewrites the live records of every sealed segment into
// one fresh segment and drops the rest: superseded versions, and
// tombstones together with everything they shadow. It runs concurrently
// with readers and the writer — segments being compacted are sealed
// and immutable, so the only synchronized step is the final swap,
// which re-points surviving index entries and replaces the manifest
// atomically. The compacted segment is placed *before* all younger
// segments in replay order, so records appended while compaction ran
// still win on the next open.
//
// Crash safety follows the ckpt discipline: the new segment is built
// under a temp name, fsynced, renamed, and only then committed by the
// manifest swap. A crash anywhere leaves either the old segment set or
// the new one; the orphaned file is deleted on the next Open.

// CompactResult summarizes one compaction run.
type CompactResult struct {
	// SegmentsIn is the number of sealed segments compacted.
	SegmentsIn int
	// Live is the number of records carried into the new segment.
	Live int
	// Dropped is the number of superseded/tombstone records discarded.
	Dropped int
	// ReclaimedBytes is the on-disk space recovered.
	ReclaimedBytes int64
	// Pause is the writer-visible stall: how long the swap held the
	// writer lock. Scanning and copying happen outside it.
	Pause time.Duration
}

// move records where one surviving record went, so the swap can
// re-point its index entry if (and only if) it is still current.
type move struct {
	h      [32]byte
	old    recloc
	newOff int64
	n      uint32
}

// Compact runs one compaction synchronously. If another compaction is
// already running it returns immediately with ok=false. A store with
// fewer than two segments (nothing sealed) is a no-op.
func (s *Store) Compact() (CompactResult, bool, error) {
	if !s.compacting.CompareAndSwap(false, true) {
		return CompactResult{}, false, nil
	}
	defer s.compacting.Store(false)
	res, err := s.compact()
	return res, err == nil, err
}

// startBackgroundCompact launches compact on its own goroutine.
// Callers must have checked the trigger condition; the compacting flag
// dedups concurrent attempts. Errors are recorded, not fatal: a failed
// compaction leaves the store exactly as it was, only less compact.
func (s *Store) startBackgroundCompact() {
	if s.closing.Load() {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		if _, err := s.compact(); err != nil {
			fmt.Fprintln(os.Stderr, "vstore: background compaction:", err)
		}
	}()
}

func (s *Store) compact() (CompactResult, error) {
	// Snapshot the sealed set. Segments appended after this point are
	// simply not part of this run.
	s.mu.RLock()
	if len(s.order) < 2 {
		s.mu.RUnlock()
		return CompactResult{}, nil
	}
	sealed := append([]uint64{}, s.order[:len(s.order)-1]...)
	sealedSet := make(map[uint64]bool, len(sealed))
	var oldBytes int64
	for _, seq := range sealed {
		sealedSet[seq] = true
		oldBytes += s.segs[seq].size
	}
	s.mu.RUnlock()

	// Reserve the output sequence number under the writer lock so a
	// concurrent rotation cannot collide with it.
	s.wmu.Lock()
	newSeq := s.nextSeq
	s.nextSeq++
	s.wmu.Unlock()

	tmpPath := filepath.Join(s.dir, fmt.Sprintf("compact-%08d.tmp", newSeq))
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return CompactResult{}, fmt.Errorf("vstore: compact temp: %w", err)
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	abort := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}

	// Copy phase: walk each sealed segment and carry over every record
	// the index still considers current. Raw bytes are copied verbatim
	// — checksums are verified on the way through and never recomputed,
	// so a bit flip cannot slip past re-encoding.
	var (
		moves   []move
		newOff  int64
		dropped int
	)
	for _, seq := range sealed {
		s.mu.RLock()
		seg := s.segs[seq]
		s.mu.RUnlock()
		data, err := os.ReadFile(seg.path)
		if err != nil {
			abort()
			return CompactResult{}, fmt.Errorf("vstore: compact read %s: %w", segmentName(seq), err)
		}
		var off int64
		for int(off) < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				abort()
				return CompactResult{}, fmt.Errorf("vstore: compact decode %s at %d: %w", segmentName(seq), off, err)
			}
			loc := recloc{seq: seq, off: off, n: uint32(n)}
			live := false
			if !rec.Tomb {
				h := fingerprint(rec.key())
				s.mu.RLock()
				live = s.index[h] == loc
				s.mu.RUnlock()
				if live {
					if _, err := bw.Write(data[off : off+int64(n)]); err != nil {
						abort()
						return CompactResult{}, fmt.Errorf("vstore: compact write: %w", err)
					}
					moves = append(moves, move{h: h, old: loc, newOff: newOff, n: uint32(n)})
					newOff += int64(n)
				}
			}
			if !live {
				dropped++
			}
			off += int64(n)
		}
	}
	if err := bw.Flush(); err != nil {
		abort()
		return CompactResult{}, fmt.Errorf("vstore: compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		abort()
		return CompactResult{}, fmt.Errorf("vstore: compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return CompactResult{}, err
	}

	newPath := filepath.Join(s.dir, segmentName(newSeq))
	haveNew := len(moves) > 0
	if haveNew {
		if err := os.Rename(tmpPath, newPath); err != nil {
			os.Remove(tmpPath)
			return CompactResult{}, fmt.Errorf("vstore: compact rename: %w", err)
		}
		syncDir(s.dir)
	} else {
		// Every sealed record was dead: no output segment at all.
		os.Remove(tmpPath)
	}

	// Swap phase: re-point surviving index entries, replace the
	// manifest, retire the old segments. This is the only part the
	// writer ever waits on.
	t0 := time.Now()
	s.wmu.Lock()
	if s.closing.Load() {
		s.wmu.Unlock()
		os.Remove(newPath)
		return CompactResult{}, fmt.Errorf("vstore: store closed during compaction")
	}

	var newSeg *segment
	if haveNew {
		r, err := os.Open(newPath)
		if err != nil {
			s.wmu.Unlock()
			return CompactResult{}, fmt.Errorf("vstore: open compacted segment: %w", err)
		}
		newSeg = &segment{seq: newSeq, path: newPath, r: r, size: newOff}
	}

	s.mu.Lock()
	carried := 0
	for _, mv := range moves {
		if s.index[mv.h] == mv.old {
			s.index[mv.h] = recloc{seq: newSeq, off: mv.newOff, n: mv.n}
			newSeg.liveBytes += int64(mv.n)
			newSeg.liveRecs++
			carried++
		} else {
			// Superseded while compaction ran; dead on arrival in the
			// new segment, reclaimed by the next run.
			newSeg.deadBytes += int64(mv.n)
			newSeg.deadRecs++
		}
	}
	var newOrder []uint64
	if haveNew {
		newOrder = append(newOrder, newSeq)
		s.segs[newSeq] = newSeg
	}
	var retired []*segment
	for _, seq := range s.order {
		if sealedSet[seq] {
			retired = append(retired, s.segs[seq])
			delete(s.segs, seq)
			continue
		}
		newOrder = append(newOrder, seq)
	}
	s.order = newOrder
	s.mu.Unlock()

	if err := s.saveManifest(newOrder); err != nil {
		s.wmu.Unlock()
		return CompactResult{}, err
	}
	s.wmu.Unlock()
	pause := time.Since(t0)

	for _, seg := range retired {
		if seg.r != nil {
			seg.r.Close()
		}
		os.Remove(seg.path)
	}

	reclaimed := oldBytes - newOff
	s.compactions.Add(1)
	if reclaimed > 0 {
		s.reclaimedBytes.Add(uint64(reclaimed))
	}
	s.compactPauseNs.Add(int64(pause))
	return CompactResult{
		SegmentsIn:     len(sealed),
		Live:           carried,
		Dropped:        dropped,
		ReclaimedBytes: reclaimed,
		Pause:          pause,
	}, nil
}
