package instcombine

import (
	"strings"
	"testing"

	"veriopt/internal/ir"
)

// These cases target individual rule branches; each is also run
// through the soundness checker.
func TestRuleBranches(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"shl-chain", `define i32 @f(i32 noundef %0) {
  %2 = shl i32 %0, 2
  %3 = shl i32 %2, 3
  ret i32 %3
}
`, "shl i32 %0, 5"},
		{"lshr-chain", `define i32 @f(i32 noundef %0) {
  %2 = lshr i32 %0, 4
  %3 = lshr i32 %2, 8
  ret i32 %3
}
`, "lshr i32 %0, 12"},
		{"shl-chain-overflow-kept", `define i8 @f(i8 noundef %0) {
  %2 = shl i8 %0, 5
  %3 = shl i8 %2, 5
  ret i8 %3
}
`, "ret i8 0"}, // known-bits/zero result: 5+5 >= 8 shifts everything out
		{"and-chain", `define i32 @f(i32 noundef %0) {
  %2 = and i32 %0, 255
  %3 = and i32 %2, 15
  ret i32 %3
}
`, "and i32 %0, 15"},
		{"or-chain", `define i32 @f(i32 noundef %0) {
  %2 = or i32 %0, 1
  %3 = or i32 %2, 6
  ret i32 %3
}
`, "or i32 %0, 7"},
		{"xor-chain", `define i32 @f(i32 noundef %0) {
  %2 = xor i32 %0, 12
  %3 = xor i32 %2, 10
  ret i32 %3
}
`, "xor i32 %0, 6"},
		{"mul-chain", `define i32 @f(i32 noundef %0) {
  %2 = mul i32 %0, 3
  %3 = mul i32 %2, 5
  ret i32 %3
}
`, "mul i32 %0, 15"},
		{"add-self", `define i32 @f(i32 noundef %0) {
  %2 = add i32 %0, %0
  ret i32 %2
}
`, "shl i32 %0, 1"},
		{"sub-to-add-neg-const", `define i32 @f(i32 noundef %0) {
  %2 = sub i32 %0, 5
  ret i32 %2
}
`, "add i32 %0, -5"},
		{"icmp-xor-const", `define i1 @f(i32 noundef %0) {
  %2 = xor i32 %0, 12
  %3 = icmp ne i32 %2, 8
  ret i1 %3
}
`, "icmp ne i32 %0, 4"},
		{"select-zero-one-inverted", `define i32 @f(i1 noundef %0) {
  %2 = select i1 %0, i32 0, i32 1
  ret i32 %2
}
`, "zext"},
		{"trunc-zext-narrower", `define i8 @f(i16 noundef %0) {
  %2 = zext i16 %0 to i64
  %3 = trunc i64 %2 to i8
  ret i8 %3
}
`, "trunc i16 %0 to i8"},
		{"trunc-zext-wider", `define i32 @f(i8 noundef %0) {
  %2 = zext i8 %0 to i64
  %3 = trunc i64 %2 to i32
  ret i32 %3
}
`, "zext i8 %0 to i32"},
		{"trunc-sext-wider", `define i32 @f(i8 noundef %0) {
  %2 = sext i8 %0 to i64
  %3 = trunc i64 %2 to i32
  ret i32 %3
}
`, "sext i8 %0 to i32"},
		{"sext-of-zext", `define i64 @f(i8 noundef %0) {
  %2 = zext i8 %0 to i16
  %3 = sext i16 %2 to i64
  ret i64 %3
}
`, "zext i8 %0 to i64"},
		{"urem-one", `define i32 @f(i32 noundef %0) {
  %2 = urem i32 %0, 1
  ret i32 %2
}
`, "ret i32 0"},
		{"udiv-exact-pow2", `define i32 @f(i32 noundef %0) {
  %2 = udiv exact i32 %0, 8
  ret i32 %2
}
`, "lshr exact i32 %0, 3"},
		{"known-bits-uge", `define i1 @f(i32 noundef %0) {
  %2 = or i32 %0, 16
  %3 = icmp uge i32 %2, 16
  ret i1 %3
}
`, "ret i1 true"},
		{"known-bits-ugt-false", `define i1 @f(i32 noundef %0) {
  %2 = and i32 %0, 3
  %3 = icmp ugt i32 %2, 9
  ret i1 %3
}
`, "ret i1 false"},
		{"xor-not-not", `define i32 @f(i32 noundef %0) {
  %2 = xor i32 %0, -1
  %3 = xor i32 %2, -1
  ret i32 %3
}
`, "ret i32 %0"},
		{"absorption-and-or", `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = or i32 %0, %1
  %4 = and i32 %3, %0
  ret i32 %4
}
`, "ret i32 %0"},
		{"const-fold-div-poison", `define i32 @f() {
  %1 = sdiv i32 7, 0
  ret i32 %1
}
`, "poison"},
		{"phi-same-const", `define i32 @f(i32 noundef %0) {
entry:
  %1 = icmp eq i32 %0, 0
  br i1 %1, label %a, label %b

a:
  br label %c

b:
  br label %c

c:
  %2 = phi i32 [ 9, %a ], [ 9, %b ]
  ret i32 %2
}
`, "ret i32 9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := checkSound(t, tc.src)
			text := ir.FuncString(g)
			if !strings.Contains(text, tc.want) {
				t.Errorf("missing %q in:\n%s", tc.want, text)
			}
		})
	}
}

func TestConstFoldFullTable(t *testing.T) {
	// Exercise every opcode of foldConst with constants on both sides.
	cases := []struct{ src, want string }{
		{"%1 = add nuw i8 200, 100", "poison"},
		{"%1 = sub nuw i8 3, 5", "poison"},
		{"%1 = mul nuw i8 100, 100", "poison"},
		{"%1 = add nsw i8 100, 100", "poison"},
		{"%1 = sub nsw i8 -100, 100", "poison"},
		{"%1 = mul nsw i8 100, 2", "poison"},
		{"%1 = udiv i8 100, 7", "ret i8 14"},
		{"%1 = udiv exact i8 100, 7", "poison"},
		{"%1 = sdiv i8 -100, 7", "ret i8 -14"},
		{"%1 = srem i8 -100, 7", "ret i8 -2"},
		{"%1 = urem i8 100, 7", "ret i8 2"},
		{"%1 = shl i8 1, 9", "poison"},
		{"%1 = lshr i8 -1, 4", "ret i8 15"},
		{"%1 = lshr exact i8 9, 1", "poison"},
		{"%1 = ashr i8 -64, 3", "ret i8 -8"},
		{"%1 = ashr exact i8 -64, 3", "ret i8 -8"},
		{"%1 = and i8 12, 10", "ret i8 8"},
		{"%1 = or i8 12, 3", "ret i8 15"},
		{"%1 = xor i8 12, 10", "ret i8 6"},
	}
	for _, tc := range cases {
		src := "define i8 @f() {\n  " + tc.src + "\n  ret i8 %1\n}\n"
		f, err := ir.ParseFunc(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		g := Run(f)
		text := ir.FuncString(g)
		if !strings.Contains(text, tc.want) {
			t.Errorf("%s:\nwant %q, got:\n%s", tc.src, tc.want, text)
		}
	}
}
