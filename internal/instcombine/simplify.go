package instcombine

import (
	"math/bits"

	"veriopt/internal/ir"
)

// simplify tries to replace in with an existing value or a constant,
// creating no new instructions (the InstSimplify half of instcombine).
// Returns nil when no simplification applies.
func simplify(c *combiner, in *ir.Instr) ir.Value {
	switch {
	case in.Op.IsBinary():
		return simplifyBin(in)
	case in.Op == ir.OpICmp:
		return simplifyICmp(in)
	case in.Op == ir.OpSelect:
		return simplifySelect(in)
	case in.Op.IsCast():
		return simplifyCast(in)
	case in.Op == ir.OpPhi:
		return simplifyPhi(in)
	}
	return nil
}

// foldConst evaluates a binary op over two constants, honouring
// poison-producing flags (a flag violation folds to poison, matching
// LLVM's constant folder).
func foldConst(in *ir.Instr, a, b *ir.Const) ir.Value {
	it := in.Ty.(ir.IntType)
	w := it.Bits
	x, y := a.Val&it.Mask(), b.Val&it.Mask()
	sx, sy := a.Signed(), b.Signed()
	var r uint64
	switch in.Op {
	case ir.OpAdd:
		r = x + y
		if in.Flags.NUW && (r&it.Mask()) < x {
			return &ir.Poison{Ty: it}
		}
		if in.Flags.NSW && signedOvf(sx+sy, it) {
			return &ir.Poison{Ty: it}
		}
	case ir.OpSub:
		r = x - y
		if in.Flags.NUW && y > x {
			return &ir.Poison{Ty: it}
		}
		if in.Flags.NSW && signedOvf(sx-sy, it) {
			return &ir.Poison{Ty: it}
		}
	case ir.OpMul:
		r = x * y
		if in.Flags.NUW {
			hi, lo := bits.Mul64(x, y)
			if hi != 0 || lo&^it.Mask() != 0 {
				return &ir.Poison{Ty: it}
			}
		}
		if in.Flags.NSW && w <= 32 && signedOvf(sx*sy, it) {
			return &ir.Poison{Ty: it}
		}
	case ir.OpUDiv:
		if y == 0 {
			return &ir.Poison{Ty: it} // div by zero constant: poison-like fold
		}
		r = x / y
		if in.Flags.Exact && x%y != 0 {
			return &ir.Poison{Ty: it}
		}
	case ir.OpSDiv:
		if y == 0 || (sy == -1 && sx == minOf(it)) {
			return &ir.Poison{Ty: it}
		}
		r = uint64(sx / sy)
		if in.Flags.Exact && sx%sy != 0 {
			return &ir.Poison{Ty: it}
		}
	case ir.OpURem:
		if y == 0 {
			return &ir.Poison{Ty: it}
		}
		r = x % y
	case ir.OpSRem:
		if y == 0 || (sy == -1 && sx == minOf(it)) {
			return &ir.Poison{Ty: it}
		}
		r = uint64(sx % sy)
	case ir.OpAnd:
		r = x & y
	case ir.OpOr:
		r = x | y
	case ir.OpXor:
		r = x ^ y
	case ir.OpShl:
		if y >= uint64(w) {
			return &ir.Poison{Ty: it}
		}
		r = x << y
	case ir.OpLShr:
		if y >= uint64(w) {
			return &ir.Poison{Ty: it}
		}
		r = x >> y
		if in.Flags.Exact && x&((1<<y)-1) != 0 {
			return &ir.Poison{Ty: it}
		}
	case ir.OpAShr:
		if y >= uint64(w) {
			return &ir.Poison{Ty: it}
		}
		r = uint64(sx >> y)
		if in.Flags.Exact && x&((1<<y)-1) != 0 {
			return &ir.Poison{Ty: it}
		}
	default:
		return nil
	}
	return &ir.Const{Ty: it, Val: r & it.Mask()}
}

func signedOvf(v int64, it ir.IntType) bool {
	return v < minOf(it) || v > maxOf(it)
}

func minOf(it ir.IntType) int64 {
	if it.Bits == 64 {
		return -9223372036854775808
	}
	return -(int64(1) << uint(it.Bits-1))
}

func maxOf(it ir.IntType) int64 {
	if it.Bits == 64 {
		return 9223372036854775807
	}
	return int64(1)<<uint(it.Bits-1) - 1
}

func simplifyBin(in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	cx, xIsC := mConst(x)
	cy, yIsC := mConst(y)
	if xIsC && yIsC {
		if v := foldConst(in, cx, cy); v != nil {
			return v
		}
	}
	switch in.Op {
	case ir.OpAdd:
		if yIsC && cy.IsZero() {
			return x
		}
		if xIsC && cx.IsZero() {
			return y
		}
	case ir.OpSub:
		if yIsC && cy.IsZero() {
			return x
		}
		if x == y {
			return cInt(in, 0) // x-x never wraps, flags irrelevant
		}
	case ir.OpMul:
		if yIsC && cy.IsOne() {
			return x
		}
		if xIsC && cx.IsOne() {
			return y
		}
		if (yIsC && cy.IsZero()) || (xIsC && cx.IsZero()) {
			return cInt(in, 0)
		}
	case ir.OpUDiv, ir.OpSDiv:
		if yIsC && cy.IsOne() {
			return x
		}
		if x == y {
			// x/x == 1 only when x != 0; not simplifiable soundly.
			return nil
		}
	case ir.OpURem:
		if yIsC && cy.IsOne() {
			return cInt(in, 0)
		}
	case ir.OpSRem:
		if yIsC && (cy.IsOne() || cy.IsAllOnes()) {
			return cInt(in, 0)
		}
	case ir.OpAnd:
		if x == y {
			return x
		}
		if (yIsC && cy.IsZero()) || (xIsC && cx.IsZero()) {
			return cInt(in, 0)
		}
		if yIsC && cy.IsAllOnes() {
			return x
		}
		if xIsC && cx.IsAllOnes() {
			return y
		}
	case ir.OpOr:
		if x == y {
			return x
		}
		if yIsC && cy.IsZero() {
			return x
		}
		if xIsC && cx.IsZero() {
			return y
		}
		if yIsC && cy.IsAllOnes() {
			return cInt(in, -1)
		}
		if xIsC && cx.IsAllOnes() {
			return cInt(in, -1)
		}
	case ir.OpXor:
		if x == y {
			return cInt(in, 0)
		}
		if yIsC && cy.IsZero() {
			return x
		}
		if xIsC && cx.IsZero() {
			return y
		}
		// ~~x -> x
		if ix, ok := mOp(x, ir.OpXor); ok && yIsC && cy.IsAllOnes() {
			if c2, ok2 := mConst(ix.Args[1]); ok2 && c2.IsAllOnes() {
				return ix.Args[0]
			}
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if yIsC && cy.IsZero() {
			return x
		}
		if xIsC && cx.IsZero() {
			return cInt(in, 0)
		}
	}
	// Double negation: 0-(0-x) -> x.
	if in.Op == ir.OpSub && xIsC && cx.IsZero() {
		if iy, ok := mOp(y, ir.OpSub); ok {
			if c2, ok2 := mConst(iy.Args[0]); ok2 && c2.IsZero() && !iy.Flags.NSW {
				return iy.Args[1]
			}
		}
	}
	return nil
}

func simplifyICmp(in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	cx, xIsC := mConst(x)
	cy, yIsC := mConst(y)
	it, isInt := ir.IsInt(x.Type())
	if !isInt {
		return nil
	}
	if xIsC && yIsC {
		return ir.NewConst(ir.I1, b2i(evalPred(in.Pred, cx, cy)))
	}
	if x == y {
		switch in.Pred {
		case ir.PredEQ, ir.PredUGE, ir.PredULE, ir.PredSGE, ir.PredSLE:
			return ir.NewConst(ir.I1, 1)
		default:
			return ir.NewConst(ir.I1, 0)
		}
	}
	// Range tautologies with constants on the RHS.
	if yIsC {
		switch in.Pred {
		case ir.PredULT:
			if cy.IsZero() {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredUGE:
			if cy.IsZero() {
				return ir.NewConst(ir.I1, 1)
			}
		case ir.PredUGT:
			if cy.IsAllOnes() {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredULE:
			if cy.IsAllOnes() {
				return ir.NewConst(ir.I1, 1)
			}
		case ir.PredSGT:
			if cy.Signed() == maxOf(it) {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredSLE:
			if cy.Signed() == maxOf(it) {
				return ir.NewConst(ir.I1, 1)
			}
		case ir.PredSLT:
			if cy.Signed() == minOf(it) {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredSGE:
			if cy.Signed() == minOf(it) {
				return ir.NewConst(ir.I1, 1)
			}
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func evalPred(p ir.Pred, a, b *ir.Const) bool {
	ua, ub := a.Val&a.Ty.Mask(), b.Val&b.Ty.Mask()
	sa, sb := a.Signed(), b.Signed()
	switch p {
	case ir.PredEQ:
		return ua == ub
	case ir.PredNE:
		return ua != ub
	case ir.PredUGT:
		return ua > ub
	case ir.PredUGE:
		return ua >= ub
	case ir.PredULT:
		return ua < ub
	case ir.PredULE:
		return ua <= ub
	case ir.PredSGT:
		return sa > sb
	case ir.PredSGE:
		return sa >= sb
	case ir.PredSLT:
		return sa < sb
	case ir.PredSLE:
		return sa <= sb
	}
	return false
}

func simplifySelect(in *ir.Instr) ir.Value {
	c, t, f := in.Args[0], in.Args[1], in.Args[2]
	if cc, ok := mConst(c); ok {
		if cc.IsOne() {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	// select c, true, false -> c (i1 only)
	if it, ok := ir.IsInt(in.Ty); ok && it.Bits == 1 {
		tc, tIsC := mConst(t)
		fc, fIsC := mConst(f)
		if tIsC && fIsC && tc.IsOne() && fc.IsZero() {
			return c
		}
	}
	return nil
}

func simplifyCast(in *ir.Instr) ir.Value {
	x := in.Args[0]
	to := in.Ty.(ir.IntType)
	if cx, ok := mConst(x); ok {
		switch in.Op {
		case ir.OpZExt:
			return &ir.Const{Ty: to, Val: cx.Val & cx.Ty.Mask()}
		case ir.OpSExt:
			return ir.NewConst(to, cx.Signed())
		case ir.OpTrunc:
			return &ir.Const{Ty: to, Val: cx.Val & to.Mask()}
		}
	}
	// trunc(zext x) or trunc(sext x) where widths return to the source.
	if in.Op == ir.OpTrunc {
		if ix, ok := mOp(x, ir.OpZExt); ok {
			if ix.Args[0].Type().Equal(to) {
				return ix.Args[0]
			}
		}
		if ix, ok := mOp(x, ir.OpSExt); ok {
			if ix.Args[0].Type().Equal(to) {
				return ix.Args[0]
			}
		}
	}
	return nil
}

// simplifyPhi folds phis whose incomings are all the same value.
func simplifyPhi(in *ir.Instr) ir.Value {
	if len(in.Incs) == 0 {
		return nil
	}
	first := in.Incs[0].Val
	for _, inc := range in.Incs[1:] {
		if inc.Val != first {
			// Also allow equal constants from different objects.
			c1, ok1 := mConst(first)
			c2, ok2 := mConst(inc.Val)
			if ok1 && ok2 && c1.Val == c2.Val && c1.Ty.Equal(c2.Ty) {
				continue
			}
			return nil
		}
	}
	// A phi may not be replaced by itself.
	if first == ir.Value(in) {
		return nil
	}
	return first
}
