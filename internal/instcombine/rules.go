package instcombine

import "veriopt/internal/ir"

// rewrite applies instruction-combining rules that may create new
// instructions. Returns the replacement value or nil. b/idx locate
// the instruction so new instructions can be inserted before it.
func (c *combiner) rewrite(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	switch {
	case in.Op.IsBinary():
		if v := c.canonicalizeBin(b, idx, in); v != nil {
			return v
		}
		if v := c.combineBin(b, idx, in); v != nil {
			return v
		}
	case in.Op == ir.OpICmp:
		if v := c.combineICmp(b, idx, in); v != nil {
			return v
		}
	case in.Op == ir.OpSelect:
		if v := c.combineSelect(b, idx, in); v != nil {
			return v
		}
	case in.Op.IsCast():
		return c.combineCast(b, idx, in)
	}
	return c.rewriteExtended(b, idx, in)
}

// canonicalizeBin puts constants on the RHS of commutative ops and
// rewrites "sub x, C" as "add x, -C", matching LLVM canonical form.
func (c *combiner) canonicalizeBin(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	if in.Op.IsCommutative() {
		if _, ok := mConst(x); ok {
			if _, yc := mConst(y); !yc {
				in.Args[0], in.Args[1] = y, x
				c.mutated = true
			}
		}
	}
	// sub x, C -> add x, -C (LLVM canonical form; safe to drop nsw/nuw
	// since the add has no flags).
	if in.Op == ir.OpSub {
		if cy, ok := mConst(y); ok && !cy.IsZero() {
			return c.newBin(b, idx, ir.OpAdd, x, cInt(in, -cy.Signed()), ir.Flags{})
		}
	}
	return nil
}

// combineBin folds chained constant operations and strength-reduces.
func (c *combiner) combineBin(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	cy, yIsC := mConst(y)

	// (op (op X, C1), C2) -> (op X, C1 ⊕ C2) for associative ops.
	if yIsC {
		switch in.Op {
		case ir.OpAdd:
			if x0, c1, ok := mBinC(x, ir.OpAdd); ok {
				return c.newBin(b, idx, ir.OpAdd, x0, cInt(in, c1.Signed()+cy.Signed()), ir.Flags{})
			}
		case ir.OpMul:
			if x0, c1, ok := mBinC(x, ir.OpMul); ok {
				return c.newBin(b, idx, ir.OpMul, x0, cInt(in, c1.Signed()*cy.Signed()), ir.Flags{})
			}
		case ir.OpAnd:
			if x0, c1, ok := mBinC(x, ir.OpAnd); ok {
				return c.newBin(b, idx, ir.OpAnd, x0, &ir.Const{Ty: intTy(in), Val: c1.Val & cy.Val}, ir.Flags{})
			}
		case ir.OpOr:
			if x0, c1, ok := mBinC(x, ir.OpOr); ok {
				return c.newBin(b, idx, ir.OpOr, x0, &ir.Const{Ty: intTy(in), Val: c1.Val | cy.Val}, ir.Flags{})
			}
		case ir.OpXor:
			if x0, c1, ok := mBinC(x, ir.OpXor); ok {
				return c.newBin(b, idx, ir.OpXor, x0, &ir.Const{Ty: intTy(in), Val: c1.Val ^ cy.Val}, ir.Flags{})
			}
		case ir.OpShl:
			// (shl (shl X, C1), C2) -> shl X, C1+C2 when in range;
			// when the total reaches the width every bit is shifted
			// out and the result is 0 (both stages were individually
			// in range, so no poison is lost).
			if x0, c1, ok := mBinC(x, ir.OpShl); ok {
				sum := c1.Val + cy.Val
				w := uint64(intTy(in).Bits)
				if c1.Val < w && cy.Val < w {
					if sum < w {
						return c.newBin(b, idx, ir.OpShl, x0, &ir.Const{Ty: intTy(in), Val: sum}, ir.Flags{})
					}
					return cInt(in, 0)
				}
			}
		case ir.OpLShr:
			if x0, c1, ok := mBinC(x, ir.OpLShr); ok {
				sum := c1.Val + cy.Val
				w := uint64(intTy(in).Bits)
				if c1.Val < w && cy.Val < w {
					if sum < w {
						return c.newBin(b, idx, ir.OpLShr, x0, &ir.Const{Ty: intTy(in), Val: sum}, ir.Flags{})
					}
					return cInt(in, 0)
				}
			}
		}
	}

	// Strength reduction with power-of-two constants.
	if yIsC {
		switch in.Op {
		case ir.OpMul:
			if k, ok := isPow2(cy); ok {
				// mul X, 2^k -> shl X, k. nuw/nsw carry over per LangRef.
				return c.newBin(b, idx, ir.OpShl, x, cInt(in, int64(k)), ir.Flags{NUW: in.Flags.NUW, NSW: in.Flags.NSW})
			}
		case ir.OpUDiv:
			if k, ok := isPow2(cy); ok {
				return c.newBin(b, idx, ir.OpLShr, x, cInt(in, int64(k)), ir.Flags{Exact: in.Flags.Exact})
			}
		case ir.OpURem:
			if _, ok := isPow2(cy); ok {
				return c.newBin(b, idx, ir.OpAnd, x, cInt(in, cy.Signed()-1), ir.Flags{})
			}
		case ir.OpSDiv:
			// sdiv X, 2^k -> ashr (add X, bias), k  where
			// bias = lshr (ashr X, w-1), w-k  rounds toward zero.
			if k, ok := isPow2(cy); ok && k > 0 {
				w := intTy(in).Bits
				sign := c.newBin(b, idx, ir.OpAShr, x, cInt(in, int64(w-1)), ir.Flags{})
				bias := c.newBin(b, idx, ir.OpLShr, sign, cInt(in, int64(w-k)), ir.Flags{})
				biased := c.newBin(b, idx, ir.OpAdd, x, bias, ir.Flags{})
				return c.newBin(b, idx, ir.OpAShr, biased, cInt(in, int64(k)), ir.Flags{})
			}
		}
	}

	// add X, X -> shl X, 1
	if in.Op == ir.OpAdd && x == y {
		return c.newBin(b, idx, ir.OpShl, x, cInt(in, 1), ir.Flags{NUW: in.Flags.NUW, NSW: in.Flags.NSW})
	}

	// (xor (xor X, Y), Y) -> X and commuted variants.
	if in.Op == ir.OpXor {
		if ix, ok := mOp(x, ir.OpXor); ok {
			if ix.Args[0] == y {
				return ix.Args[1]
			}
			if ix.Args[1] == y {
				return ix.Args[0]
			}
		}
		if iy, ok := mOp(y, ir.OpXor); ok {
			if iy.Args[0] == x {
				return iy.Args[1]
			}
			if iy.Args[1] == x {
				return iy.Args[0]
			}
		}
	}

	// (and (or X, Y), X) -> X ; (or (and X, Y), X) -> X (absorption).
	if in.Op == ir.OpAnd {
		if ix, ok := mOp(x, ir.OpOr); ok && (ix.Args[0] == y || ix.Args[1] == y) {
			return y
		}
		if iy, ok := mOp(y, ir.OpOr); ok && (iy.Args[0] == x || iy.Args[1] == x) {
			return x
		}
	}
	if in.Op == ir.OpOr {
		if ix, ok := mOp(x, ir.OpAnd); ok && (ix.Args[0] == y || ix.Args[1] == y) {
			return y
		}
		if iy, ok := mOp(y, ir.OpAnd); ok && (iy.Args[0] == x || iy.Args[1] == x) {
			return x
		}
	}

	// add (sub 0, X), Y -> sub Y, X ; add X, (sub 0, Y) -> sub X, Y.
	if in.Op == ir.OpAdd {
		if ix, ok := mOp(x, ir.OpSub); ok {
			if c0, isZ := mConst(ix.Args[0]); isZ && c0.IsZero() {
				return c.newBin(b, idx, ir.OpSub, y, ix.Args[1], ir.Flags{})
			}
		}
		if iy, ok := mOp(y, ir.OpSub); ok {
			if c0, isZ := mConst(iy.Args[0]); isZ && c0.IsZero() {
				return c.newBin(b, idx, ir.OpSub, x, iy.Args[1], ir.Flags{})
			}
		}
	}

	// Known-bits driven: and X, C -> X when every bit the mask clears
	// is already known zero in X.
	if in.Op == ir.OpAnd && yIsC {
		kb := knownBits(x, 4)
		cleared := ^cy.Val & intTy(in).Mask()
		if cleared&^kb.zeros == 0 {
			return x
		}
	}
	return nil
}

// combineICmp canonicalizes and combines comparisons.
func (c *combiner) combineICmp(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	x, y := in.Args[0], in.Args[1]
	// Constant on the LHS: swap.
	if _, ok := mConst(x); ok {
		if _, yc := mConst(y); !yc {
			in.Args[0], in.Args[1] = y, x
			in.Pred = in.Pred.Swapped()
			c.mutated = true
			return nil
		}
	}
	cy, yIsC := mConst(y)

	// icmp P (add X, C1), C2 -> icmp P X, (C2-C1) for eq/ne (and for
	// ordered predicates only when the shifted range does not wrap,
	// which we conservatively skip).
	if yIsC && (in.Pred == ir.PredEQ || in.Pred == ir.PredNE) {
		if x0, c1, ok := mBinC(x, ir.OpAdd); ok {
			return c.newICmp(b, idx, in.Pred, x0, cInt(x, cy.Signed()-c1.Signed()))
		}
		// icmp eq (xor X, C1), C2 -> icmp eq X, C1^C2.
		if x0, c1, ok := mBinC(x, ir.OpXor); ok {
			return c.newICmp(b, idx, in.Pred, x0, &ir.Const{Ty: intTy(x), Val: c1.Val ^ cy.Val})
		}
	}

	// Known-bits range folds: compares whose outcome the known bits of
	// the LHS decide, e.g. icmp ult (and X, 7), 8 -> true.
	if yIsC {
		it := intTy(x)
		kb := knownBits(x, 4)
		umax := it.Mask() &^ kb.zeros // upper bound given known-zero bits
		umin := kb.ones               // lower bound given known-one bits
		cu := cy.Val & it.Mask()
		switch in.Pred {
		case ir.PredULT:
			if umax < cu {
				return ir.NewConst(ir.I1, 1)
			}
			if umin >= cu {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredUGT:
			if umin > cu {
				return ir.NewConst(ir.I1, 1)
			}
			if umax <= cu {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredULE:
			if umax <= cu {
				return ir.NewConst(ir.I1, 1)
			}
			if umin > cu {
				return ir.NewConst(ir.I1, 0)
			}
		case ir.PredUGE:
			if umin >= cu {
				return ir.NewConst(ir.I1, 1)
			}
			if umax < cu {
				return ir.NewConst(ir.I1, 0)
			}
		}
	}
	return nil
}

// combineSelect handles select canonicalizations that create casts.
func (c *combiner) combineSelect(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	cond, t, f := in.Args[0], in.Args[1], in.Args[2]
	it, ok := ir.IsInt(in.Ty)
	if !ok {
		return nil
	}
	tc, tIsC := mConst(t)
	fc, fIsC := mConst(f)
	// select C, 1, 0 -> zext C (widths > 1).
	if tIsC && fIsC && it.Bits > 1 && tc.IsOne() && fc.IsZero() {
		return c.newCast(b, idx, ir.OpZExt, cond, it)
	}
	// select C, 0, 1 -> zext (xor C, true).
	if tIsC && fIsC && it.Bits > 1 && tc.IsZero() && fc.IsOne() {
		inv := c.newBin(b, idx, ir.OpXor, cond, ir.NewConst(ir.I1, 1), ir.Flags{})
		return c.newCast(b, idx, ir.OpZExt, inv, it)
	}
	// select (icmp slt X, 0), -1, 0 -> ashr X, w-1 (sign splat).
	if ic, isCmp := mOp(cond, ir.OpICmp); isCmp && tIsC && fIsC {
		if cc, isC := mConst(ic.Args[1]); isC && cc.IsZero() && ic.Pred == ir.PredSLT &&
			tc.IsAllOnes() && fc.IsZero() && ic.Args[0].Type().Equal(in.Ty) {
			w := it.Bits
			return c.newBin(b, idx, ir.OpAShr, ic.Args[0], cInt(in, int64(w-1)), ir.Flags{})
		}
	}
	return nil
}

// combineCast merges cast chains.
func (c *combiner) combineCast(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	x := in.Args[0]
	to := in.Ty.(ir.IntType)
	switch in.Op {
	case ir.OpZExt:
		// zext(zext X) -> zext X.
		if ix, ok := mOp(x, ir.OpZExt); ok {
			return c.newCast(b, idx, ir.OpZExt, ix.Args[0], to)
		}
	case ir.OpSExt:
		if ix, ok := mOp(x, ir.OpSExt); ok {
			return c.newCast(b, idx, ir.OpSExt, ix.Args[0], to)
		}
		// sext(zext X) -> zext X (the zext already made it non-negative).
		if ix, ok := mOp(x, ir.OpZExt); ok {
			return c.newCast(b, idx, ir.OpZExt, ix.Args[0], to)
		}
	case ir.OpTrunc:
		// trunc(trunc X) -> trunc X.
		if ix, ok := mOp(x, ir.OpTrunc); ok {
			return c.newCast(b, idx, ir.OpTrunc, ix.Args[0], to)
		}
		// trunc(zext/sext X) to narrower-than-source -> trunc X;
		// to wider-than-source handled here, equal handled in simplify.
		if ix, ok := mOp(x, ir.OpZExt); ok {
			from := intTy(ix.Args[0])
			if to.Bits < from.Bits {
				return c.newCast(b, idx, ir.OpTrunc, ix.Args[0], to)
			}
			if to.Bits > from.Bits {
				return c.newCast(b, idx, ir.OpZExt, ix.Args[0], to)
			}
		}
		if ix, ok := mOp(x, ir.OpSExt); ok {
			from := intTy(ix.Args[0])
			if to.Bits < from.Bits {
				return c.newCast(b, idx, ir.OpTrunc, ix.Args[0], to)
			}
			if to.Bits > from.Bits {
				return c.newCast(b, idx, ir.OpSExt, ix.Args[0], to)
			}
		}
	}
	return nil
}
