package instcombine

import "veriopt/internal/ir"

// rewriteExtended holds the second tier of instcombine patterns:
// bitwise algebra, compare-with-mask folds, and zext-of-bool
// arithmetic. Called from rewrite after the first tier finds nothing.
func (c *combiner) rewriteExtended(b *ir.Block, idx *int, in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpXor:
		// (x | y) ^ (x & y) -> x ^ y.
		if l, ok := mOp(in.Args[0], ir.OpOr); ok {
			if r, ok2 := mOp(in.Args[1], ir.OpAnd); ok2 && sameOperands(l, r) {
				return c.newBin(b, idx, ir.OpXor, l.Args[0], l.Args[1], ir.Flags{})
			}
		}
		if l, ok := mOp(in.Args[0], ir.OpAnd); ok {
			if r, ok2 := mOp(in.Args[1], ir.OpOr); ok2 && sameOperands(l, r) {
				return c.newBin(b, idx, ir.OpXor, l.Args[0], l.Args[1], ir.Flags{})
			}
		}
	case ir.OpSub:
		// x - (x & y) -> x & ~y.
		if r, ok := mOp(in.Args[1], ir.OpAnd); ok {
			var other ir.Value
			if r.Args[0] == in.Args[0] {
				other = r.Args[1]
			} else if r.Args[1] == in.Args[0] {
				other = r.Args[0]
			}
			if other != nil {
				inv := c.newBin(b, idx, ir.OpXor, other, cInt(in, -1), ir.Flags{})
				return c.newBin(b, idx, ir.OpAnd, in.Args[0], inv, ir.Flags{})
			}
		}
		// (x | y) - x -> y & ~x  (no-overflow form of the identity).
		if l, ok := mOp(in.Args[0], ir.OpOr); ok {
			var other ir.Value
			if l.Args[0] == in.Args[1] {
				other = l.Args[1]
			} else if l.Args[1] == in.Args[1] {
				other = l.Args[0]
			}
			if other != nil {
				inv := c.newBin(b, idx, ir.OpXor, in.Args[1], cInt(in, -1), ir.Flags{})
				return c.newBin(b, idx, ir.OpAnd, other, inv, ir.Flags{})
			}
		}
	case ir.OpAdd:
		// (x & y) + (x | y) -> x + y.
		if l, ok := mOp(in.Args[0], ir.OpAnd); ok {
			if r, ok2 := mOp(in.Args[1], ir.OpOr); ok2 && sameOperands(l, r) {
				return c.newBin(b, idx, ir.OpAdd, l.Args[0], l.Args[1], ir.Flags{})
			}
		}
		if l, ok := mOp(in.Args[0], ir.OpOr); ok {
			if r, ok2 := mOp(in.Args[1], ir.OpAnd); ok2 && sameOperands(l, r) {
				return c.newBin(b, idx, ir.OpAdd, l.Args[0], l.Args[1], ir.Flags{})
			}
		}
		// zext(b1) + zext(b1) patterns stay; handled by mul canon.
	case ir.OpAnd:
		// and (xor x, -1), (xor y, -1) -> xor (or x, y), -1 (De Morgan).
		if l, ok := notOf(in.Args[0]); ok {
			if r, ok2 := notOf(in.Args[1]); ok2 {
				or := c.newBin(b, idx, ir.OpOr, l, r, ir.Flags{})
				return c.newBin(b, idx, ir.OpXor, or, cInt(in, -1), ir.Flags{})
			}
		}
	case ir.OpOr:
		// or (xor x, -1), (xor y, -1) -> xor (and x, y), -1 (De Morgan).
		if l, ok := notOf(in.Args[0]); ok {
			if r, ok2 := notOf(in.Args[1]); ok2 {
				and := c.newBin(b, idx, ir.OpAnd, l, r, ir.Flags{})
				return c.newBin(b, idx, ir.OpXor, and, cInt(in, -1), ir.Flags{})
			}
		}
	case ir.OpICmp:
		// icmp eq/ne (zext x), 0  ->  icmp eq/ne x, 0 (and const in range).
		if (in.Pred == ir.PredEQ || in.Pred == ir.PredNE) && len(in.Args) == 2 {
			if zx, ok := mOp(in.Args[0], ir.OpZExt); ok {
				if cy, isC := mConst(in.Args[1]); isC {
					from := intTy(zx.Args[0])
					if cy.Val&^from.Mask() == 0 {
						return c.newICmp(b, idx, in.Pred, zx.Args[0], &ir.Const{Ty: from, Val: cy.Val})
					}
					// Constant outside the zext range: eq is false, ne true.
					if in.Pred == ir.PredEQ {
						return ir.NewConst(ir.I1, 0)
					}
					return ir.NewConst(ir.I1, 1)
				}
			}
		}
	case ir.OpSelect:
		// select c, (add x, C), x -> add x, (select c, C, 0) is not
		// simpler; instead fold select of identical operations:
		// select c, (op x, a), (op x, b) -> op x, (select c, a, b).
		l, lok := in.Args[1].(*ir.Instr)
		r, rok := in.Args[2].(*ir.Instr)
		if lok && rok && l.Op == r.Op && l.Op.IsBinary() && !l.Op.IsDivRem() &&
			l.Flags == r.Flags && l.Args[0] == r.Args[0] {
			sel := c.newSelect(b, idx, in.Args[0], l.Args[1], r.Args[1])
			return c.newBin(b, idx, l.Op, l.Args[0], sel, l.Flags)
		}
	}
	return nil
}

// sameOperands reports whether two binary instructions have the same
// operand pair (in either order, both ops commutative here).
func sameOperands(a, b *ir.Instr) bool {
	return (a.Args[0] == b.Args[0] && a.Args[1] == b.Args[1]) ||
		(a.Args[0] == b.Args[1] && a.Args[1] == b.Args[0])
}

// notOf matches "xor x, -1", returning x.
func notOf(v ir.Value) (ir.Value, bool) {
	in, ok := mOp(v, ir.OpXor)
	if !ok {
		return nil, false
	}
	if cy, isC := mConst(in.Args[1]); isC && cy.IsAllOnes() {
		return in.Args[0], true
	}
	return nil, false
}
