package instcombine

import "veriopt/internal/ir"

// known holds bit-level facts about a value: bits proven zero and
// bits proven one (disjoint sets).
type known struct {
	zeros uint64
	ones  uint64
	width int
}

func (k known) mask() uint64 {
	if k.width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k.width)) - 1
}

// knownBits computes known zero/one bits of v to a bounded recursion
// depth, a lightweight version of LLVM's computeKnownBits.
func knownBits(v ir.Value, depth int) known {
	it, ok := ir.IsInt(v.Type())
	if !ok {
		return known{}
	}
	k := known{width: it.Bits}
	if c, isC := mConst(v); isC {
		k.ones = c.Val & it.Mask()
		k.zeros = ^c.Val & it.Mask()
		return k
	}
	if depth <= 0 {
		return k
	}
	in, isIn := v.(*ir.Instr)
	if !isIn {
		return k
	}
	switch in.Op {
	case ir.OpAnd:
		a := knownBits(in.Args[0], depth-1)
		b := knownBits(in.Args[1], depth-1)
		k.zeros = a.zeros | b.zeros
		k.ones = a.ones & b.ones
	case ir.OpOr:
		a := knownBits(in.Args[0], depth-1)
		b := knownBits(in.Args[1], depth-1)
		k.ones = a.ones | b.ones
		k.zeros = a.zeros & b.zeros
	case ir.OpXor:
		a := knownBits(in.Args[0], depth-1)
		b := knownBits(in.Args[1], depth-1)
		bothKnown := (a.zeros | a.ones) & (b.zeros | b.ones)
		val := (a.ones ^ b.ones) & bothKnown
		k.ones = val
		k.zeros = ^val & bothKnown & k.mask()
	case ir.OpShl:
		if c, isC := mConst(in.Args[1]); isC && c.Val < uint64(it.Bits) {
			a := knownBits(in.Args[0], depth-1)
			k.ones = (a.ones << c.Val) & k.mask()
			k.zeros = ((a.zeros << c.Val) | ((1 << c.Val) - 1)) & k.mask()
		}
	case ir.OpLShr:
		if c, isC := mConst(in.Args[1]); isC && c.Val < uint64(it.Bits) {
			a := knownBits(in.Args[0], depth-1)
			k.ones = (a.ones & k.mask()) >> c.Val
			high := k.mask() &^ (k.mask() >> c.Val)
			k.zeros = ((a.zeros & k.mask()) >> c.Val) | high
		}
	case ir.OpZExt:
		from := intTy(in.Args[0])
		a := knownBits(in.Args[0], depth-1)
		k.ones = a.ones & from.Mask()
		k.zeros = (a.zeros & from.Mask()) | (k.mask() &^ from.Mask())
	case ir.OpTrunc:
		a := knownBits(in.Args[0], depth-1)
		k.ones = a.ones & k.mask()
		k.zeros = a.zeros & k.mask()
	case ir.OpURem:
		if c, isC := mConst(in.Args[1]); isC {
			if _, pow2 := isPow2(c); pow2 {
				// urem X, 2^k keeps only the low k bits.
				k.zeros = k.mask() &^ (c.Val - 1)
			}
		}
	case ir.OpSelect:
		a := knownBits(in.Args[1], depth-1)
		b := knownBits(in.Args[2], depth-1)
		k.zeros = a.zeros & b.zeros
		k.ones = a.ones & b.ones
	}
	k.zeros &= k.mask()
	k.ones &= k.mask()
	return k
}
