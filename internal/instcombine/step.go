package instcombine

import "veriopt/internal/ir"

// Site identifies one instruction position where a combining step can
// fire, used by the policy's action space (internal/rewrite).
type Site struct {
	Block int
	Instr int
}

// Sites returns all positions where a single simplify/rewrite step
// would change the function. The probe runs against clones so the
// input is never modified.
func Sites(f *ir.Function) []Site {
	var out []Site
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			if stepWouldFire(f, bi, ii) {
				out = append(out, Site{Block: bi, Instr: ii})
			}
		}
	}
	return out
}

func stepWouldFire(f *ir.Function, bi, ii int) bool {
	g := ir.CloneFunc(f)
	return StepAt(g, bi, ii)
}

// StepAt applies one instcombine micro-step (simplify or rewrite) at
// the given position, mutating f in place. It reports whether
// anything changed. Unlike Run, it performs no fixpoint iteration, no
// memory forwarding, and no DCE beyond replacing the single value —
// it is the unit of the simulated LLM's action space.
func StepAt(f *ir.Function, bi, ii int) bool {
	if bi >= len(f.Blocks) {
		return false
	}
	b := f.Blocks[bi]
	if ii >= len(b.Instrs) {
		return false
	}
	in := b.Instrs[ii]
	if !in.HasResult() {
		return false
	}
	c := &combiner{fn: f}
	if v := simplify(c, in); v != nil && v != ir.Value(in) {
		ir.ReplaceAllUses(f, in, v)
		ir.DeadCodeElim(f, nil)
		return true
	}
	idx := ii
	if v := c.rewrite(b, &idx, in); v != nil && v != ir.Value(in) {
		ir.ReplaceAllUses(f, in, v)
		ir.DeadCodeElim(f, nil)
		return true
	}
	return c.mutated
}

// ForwardLoadsStep exposes one round of store-to-load forwarding for
// the policy action space. Reports whether anything changed.
func ForwardLoadsStep(f *ir.Function) bool {
	if forwardLoads(f) {
		ir.DeadCodeElim(f, nil)
		return true
	}
	return false
}

// RemoveDeadAllocasStep exposes the dead-alloca cleanup for the
// policy action space. Reports whether anything changed.
func RemoveDeadAllocasStep(f *ir.Function) bool {
	if removeDeadAllocas(f) {
		ir.DeadCodeElim(f, nil)
		return true
	}
	return false
}
