package instcombine

import (
	"strings"
	"testing"

	"veriopt/internal/alive"
	"veriopt/internal/costmodel"
	"veriopt/internal/ir"
)

func opt(t *testing.T, src string) (*ir.Function, string) {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := Run(f)
	if err := ir.VerifyFunc(g); err != nil {
		t.Fatalf("optimized function fails verification: %v\n%s", err, ir.FuncString(g))
	}
	return g, ir.FuncString(g)
}

// checkSound verifies that Run's output refines its input via the
// alive checker.
func checkSound(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := Run(f)
	res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
	if res.Verdict == alive.SemanticError {
		t.Fatalf("instcombine produced unsound output!\nsource:\n%s\noutput:\n%s\ndiag: %s",
			src, ir.FuncString(g), res.Diag)
	}
	return g
}

func TestIdentityFolds(t *testing.T) {
	cases := []struct{ name, src, wantInstr string }{
		{"add0", `define i32 @f(i32 noundef %0) {
  %2 = add i32 %0, 0
  ret i32 %2
}
`, "ret i32 %0"},
		{"mul1", `define i32 @f(i32 noundef %0) {
  %2 = mul i32 %0, 1
  ret i32 %2
}
`, "ret i32 %0"},
		{"xorself", `define i32 @f(i32 noundef %0) {
  %2 = xor i32 %0, %0
  ret i32 %2
}
`, "ret i32 0"},
		{"and-allones", `define i8 @f(i8 noundef %0) {
  %2 = and i8 %0, -1
  ret i8 %2
}
`, "ret i8 %0"},
		{"or-zero", `define i16 @f(i16 noundef %0) {
  %2 = or i16 %0, 0
  ret i16 %2
}
`, "ret i16 %0"},
		{"subself", `define i64 @f(i64 noundef %0) {
  %2 = sub i64 %0, %0
  ret i64 %2
}
`, "ret i64 0"},
		{"sdiv1", `define i32 @f(i32 noundef %0) {
  %2 = sdiv i32 %0, 1
  ret i32 %2
}
`, "ret i32 %0"},
		{"srem-minus1", `define i32 @f(i32 noundef %0) {
  %2 = srem i32 %0, -1
  ret i32 %2
}
`, "ret i32 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, text := opt(t, tc.src)
			if !strings.Contains(text, tc.wantInstr) {
				t.Errorf("output missing %q:\n%s", tc.wantInstr, text)
			}
			checkSound(t, tc.src)
		})
	}
}

func TestConstantChainFolding(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
  %2 = add i32 %0, 3
  %3 = add i32 %2, 4
  %4 = add i32 %3, 5
  ret i32 %4
}
`
	g, text := opt(t, src)
	if g.NumInstrs() != 2 {
		t.Errorf("want 2 instructions (add+ret), got %d:\n%s", g.NumInstrs(), text)
	}
	if !strings.Contains(text, "add i32 %0, 12") {
		t.Errorf("want folded constant 12:\n%s", text)
	}
	checkSound(t, src)
}

func TestStrengthReduction(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
  %2 = mul i32 %0, 8
  %3 = udiv i32 %2, 4
  %4 = urem i32 %3, 16
  ret i32 %4
}
`
	_, text := opt(t, src)
	if strings.Contains(text, "mul") || strings.Contains(text, "udiv") || strings.Contains(text, "urem") {
		t.Errorf("strength reduction missed:\n%s", text)
	}
	checkSound(t, src)
}

func TestSDivByPow2LowersToAshrSequence(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
  %2 = sdiv i32 %0, 2
  ret i32 %2
}
`
	_, text := opt(t, src)
	if strings.Contains(text, "sdiv") {
		t.Errorf("sdiv by 2 not lowered:\n%s", text)
	}
	if !strings.Contains(text, "ashr") {
		t.Errorf("expected ashr sequence:\n%s", text)
	}
	checkSound(t, src)
}

func TestAllocaRoundTripRemoved(t *testing.T) {
	// The clang -O0 idiom: params spilled to allocas.
	src := `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = alloca i32
  %4 = alloca i32
  store i32 %0, ptr %3
  store i32 %1, ptr %4
  %5 = load i32, ptr %3
  %6 = load i32, ptr %4
  %7 = add nsw i32 %5, %6
  ret i32 %7
}
`
	g, text := opt(t, src)
	if strings.Contains(text, "alloca") || strings.Contains(text, "store") || strings.Contains(text, "load") {
		t.Errorf("alloca round trip not removed:\n%s", text)
	}
	if g.NumInstrs() != 2 {
		t.Errorf("want add+ret, got %d instrs:\n%s", g.NumInstrs(), text)
	}
	checkSound(t, src)
}

func TestPaperFig8Shape(t *testing.T) {
	// store 0; load -> ret 0 (paper Figure 8, single-cell version).
	src := `define i64 @get_d() {
  %1 = alloca i64
  store i64 0, ptr %1
  %2 = load i64, ptr %1
  ret i64 %2
}
`
	g, text := opt(t, src)
	if g.NumInstrs() != 1 || !strings.Contains(text, "ret i64 0") {
		t.Errorf("want single ret i64 0:\n%s", text)
	}
}

func TestEscapedAllocaPreserved(t *testing.T) {
	// The alloca address escapes into a call: must keep memory ops.
	src := `declare void @sink(ptr)

define i32 @f(i32 noundef %0) {
  %2 = alloca i32
  store i32 %0, ptr %2
  call void @sink(ptr %2)
  %3 = load i32, ptr %2
  ret i32 %3
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := Run(m.Funcs[0])
	text := ir.FuncString(g)
	if !strings.Contains(text, "alloca") || !strings.Contains(text, "store") || !strings.Contains(text, "load") {
		t.Errorf("escaped alloca was wrongly optimized:\n%s", text)
	}
}

func TestCallPreservedThroughForwarding(t *testing.T) {
	// A call between store and load must block forwarding only for
	// escaped allocas.
	src := `declare i32 @pure(i32)

define i32 @f(i32 noundef %0) {
  %2 = alloca i32
  store i32 %0, ptr %2
  %3 = call i32 @pure(i32 %0)
  %4 = load i32, ptr %2
  %5 = add i32 %3, %4
  ret i32 %5
}
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := Run(m.Funcs[0])
	text := ir.FuncString(g)
	if strings.Contains(text, "load") {
		t.Errorf("non-escaping alloca load should forward across the call:\n%s", text)
	}
	if !strings.Contains(text, "call i32 @pure") {
		t.Errorf("call must be preserved:\n%s", text)
	}
}

func TestICmpCanonicalizationAndFolds(t *testing.T) {
	src := `define i1 @f(i32 noundef %0) {
  %2 = icmp sgt i32 5, %0
  ret i1 %2
}
`
	_, text := opt(t, src)
	if !strings.Contains(text, "icmp slt i32 %0, 5") {
		t.Errorf("constant not swapped to RHS:\n%s", text)
	}

	src2 := `define i1 @f(i32 noundef %0) {
  %2 = add i32 %0, 7
  %3 = icmp eq i32 %2, 10
  ret i1 %3
}
`
	_, text2 := opt(t, src2)
	if !strings.Contains(text2, "icmp eq i32 %0, 3") {
		t.Errorf("add not folded into icmp:\n%s", text2)
	}
	checkSound(t, src2)
}

func TestKnownBitsICmpFold(t *testing.T) {
	src := `define i1 @f(i32 noundef %0) {
  %2 = and i32 %0, 7
  %3 = icmp ult i32 %2, 8
  ret i1 %3
}
`
	_, text := opt(t, src)
	if !strings.Contains(text, "ret i1 true") {
		t.Errorf("tautological compare not folded:\n%s", text)
	}
	checkSound(t, src)
}

func TestSelectFolds(t *testing.T) {
	src := `define i32 @f(i1 noundef %0) {
  %2 = select i1 %0, i32 1, i32 0
  ret i32 %2
}
`
	_, text := opt(t, src)
	if !strings.Contains(text, "zext i1 %0 to i32") {
		t.Errorf("select 1/0 not turned into zext:\n%s", text)
	}
	checkSound(t, src)
}

func TestSignSplatSelect(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
  %2 = icmp slt i32 %0, 0
  %3 = select i1 %2, i32 -1, i32 0
  ret i32 %3
}
`
	_, text := opt(t, src)
	if !strings.Contains(text, "ashr i32 %0, 31") {
		t.Errorf("sign splat not recognized:\n%s", text)
	}
	checkSound(t, src)
}

func TestCastChains(t *testing.T) {
	src := `define i64 @f(i8 noundef %0) {
  %2 = zext i8 %0 to i16
  %3 = zext i16 %2 to i32
  %4 = zext i32 %3 to i64
  ret i64 %4
}
`
	g, text := opt(t, src)
	if g.NumInstrs() != 2 || !strings.Contains(text, "zext i8 %0 to i64") {
		t.Errorf("zext chain not merged:\n%s", text)
	}
	checkSound(t, src)
}

func TestCFGUntouched(t *testing.T) {
	// InstCombine must not remove blocks even when a branch is
	// decidable — that's simplifycfg's job (paper Fig. 10 relies on
	// the distinction).
	src := `define i32 @f(i32 noundef %0) {
entry:
  %1 = icmp eq i32 0, 0
  br i1 %1, label %a, label %b

a:
  ret i32 1

b:
  ret i32 2
}
`
	g, _ := opt(t, src)
	if len(g.Blocks) != 3 {
		t.Errorf("block count changed: %d", len(g.Blocks))
	}
}

func TestIdempotent(t *testing.T) {
	src := `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = alloca i32
  store i32 %0, ptr %3
  %4 = load i32, ptr %3
  %5 = mul i32 %4, 4
  %6 = add i32 %5, 0
  %7 = sub i32 %6, %1
  ret i32 %7
}
`
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	once := Run(f)
	twice := Run(once)
	if ir.FuncString(once) != ir.FuncString(twice) {
		t.Errorf("pass not idempotent:\nonce:\n%s\ntwice:\n%s", ir.FuncString(once), ir.FuncString(twice))
	}
}

func TestOptimizationImprovesCost(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
  %2 = alloca i32
  store i32 %0, ptr %2
  %3 = load i32, ptr %2
  %4 = mul i32 %3, 16
  %5 = udiv i32 %4, 2
  ret i32 %5
}
`
	f, _ := ir.ParseFunc(src)
	g := Run(f)
	before, after := costmodel.Measure(f), costmodel.Measure(g)
	if after.Latency >= before.Latency {
		t.Errorf("latency not improved: %d -> %d", before.Latency, after.Latency)
	}
	if after.ICount >= before.ICount {
		t.Errorf("icount not improved: %d -> %d", before.ICount, after.ICount)
	}
}

func TestNegationFolds(t *testing.T) {
	src := `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = sub i32 0, %1
  %4 = add i32 %0, %3
  ret i32 %4
}
`
	_, text := opt(t, src)
	if !strings.Contains(text, "sub i32 %0, %1") {
		t.Errorf("add of negation not rewritten to sub:\n%s", text)
	}
	checkSound(t, src)
}

func TestXorChainCancel(t *testing.T) {
	src := `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = xor i32 %0, %1
  %4 = xor i32 %3, %1
  ret i32 %4
}
`
	g, text := opt(t, src)
	if g.NumInstrs() != 1 || !strings.Contains(text, "ret i32 %0") {
		t.Errorf("xor chain not cancelled:\n%s", text)
	}
	checkSound(t, src)
}
