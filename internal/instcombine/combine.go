// Package instcombine implements a from-scratch peephole optimizer
// over the IR subset, modeled on LLVM's -instcombine pass: local
// algebraic simplifications, canonicalizations, instruction
// combining, store-to-load forwarding within a block, and removal of
// dead non-escaping allocas (LLVM's isAllocSiteRemovable cleanup).
// Like the real pass it leaves the CFG untouched — control-flow
// folding belongs to simplifycfg, which this package deliberately
// does not perform (the paper's Fig. 10 emergent behaviour depends on
// that separation).
//
// The pass is the reproduction's reference labeler: training pairs
// are (O0-style IR, instcombine IR), and its output is the exact-match
// target of the reward function (Eq. 1).
package instcombine

import (
	"fmt"

	"veriopt/internal/ir"
)

// Run returns an optimized copy of f; the input is not modified. The
// output is renumbered into canonical form.
func Run(f *ir.Function) *ir.Function {
	g := ir.CloneFunc(f)
	c := &combiner{fn: g}
	for iter := 0; iter < maxIterations; iter++ {
		changed := c.iterate()
		changed = forwardLoads(g) || changed
		changed = removeDeadAllocas(g) || changed
		changed = ir.DeadCodeElim(g, nil) > 0 || changed
		if !changed {
			break
		}
	}
	ir.RenumberFunc(g)
	return g
}

// maxIterations caps fixpoint iteration; real instcombine has a
// similar safety cap.
const maxIterations = 32

// combiner walks instructions applying simplification and rewrite
// rules until no rule fires.
type combiner struct {
	fn     *ir.Function
	nextID int
	// mutated records in-place edits (operand swaps) that do not
	// produce a replacement value but must still count as progress.
	mutated bool
}

// iterate runs one sweep over all instructions; reports whether
// anything changed.
func (c *combiner) iterate() bool {
	changed := false
	c.mutated = false
	for _, b := range c.fn.Blocks {
		// Index-based walk: rules may insert before the current
		// instruction, so re-find positions as we go.
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if !in.HasResult() {
				continue
			}
			// First try to simplify to an existing value.
			if v := simplify(c, in); v != nil && v != ir.Value(in) {
				ir.ReplaceAllUses(c.fn, in, v)
				changed = true
				continue
			}
			// Then try rewrite rules that build new instructions.
			if v := c.rewrite(b, &i, in); v != nil && v != ir.Value(in) {
				ir.ReplaceAllUses(c.fn, in, v)
				changed = true
			}
		}
	}
	return changed || c.mutated
}

// fresh returns a temporary name that does not collide with any
// existing t<N> name in the function (StepAt creates a new combiner
// per call, so the counter must start above what is already there).
func (c *combiner) fresh() string {
	if c.nextID == 0 {
		c.fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			var n int
			if _, err := fmt.Sscanf(in.NameStr, "t%d", &n); err == nil && n > c.nextID {
				c.nextID = n
			}
		})
		for _, p := range c.fn.Params {
			var n int
			if _, err := fmt.Sscanf(p.NameStr, "t%d", &n); err == nil && n > c.nextID {
				c.nextID = n
			}
		}
	}
	c.nextID++
	return fmt.Sprintf("t%d", c.nextID)
}

// insertBefore places a new instruction immediately before position
// *idx in block b and advances the index.
func (c *combiner) insertBefore(b *ir.Block, idx *int, in *ir.Instr) *ir.Instr {
	if in.HasResult() && in.NameStr == "" {
		in.NameStr = c.fresh()
	}
	in.Parent = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[*idx+1:], b.Instrs[*idx:])
	b.Instrs[*idx] = in
	*idx++
	return in
}

// Convenience constructors used by rules.

func (c *combiner) newBin(b *ir.Block, idx *int, op ir.Opcode, x, y ir.Value, fl ir.Flags) *ir.Instr {
	return c.insertBefore(b, idx, &ir.Instr{Op: op, Ty: x.Type(), Args: []ir.Value{x, y}, Flags: fl})
}

func (c *combiner) newICmp(b *ir.Block, idx *int, p ir.Pred, x, y ir.Value) *ir.Instr {
	return c.insertBefore(b, idx, &ir.Instr{Op: ir.OpICmp, Pred: p, Ty: ir.I1, Args: []ir.Value{x, y}})
}

func (c *combiner) newSelect(b *ir.Block, idx *int, cond, t, f ir.Value) *ir.Instr {
	return c.insertBefore(b, idx, &ir.Instr{Op: ir.OpSelect, Ty: t.Type(), Args: []ir.Value{cond, t, f}})
}

func (c *combiner) newCast(b *ir.Block, idx *int, op ir.Opcode, x ir.Value, to ir.Type) *ir.Instr {
	return c.insertBefore(b, idx, &ir.Instr{Op: op, Ty: to, Args: []ir.Value{x}})
}

// Matchers shared by the rule files.

// mConst matches an integer constant.
func mConst(v ir.Value) (*ir.Const, bool) {
	c, ok := v.(*ir.Const)
	return c, ok
}

// mOp matches an instruction with the given opcode.
func mOp(v ir.Value, op ir.Opcode) (*ir.Instr, bool) {
	in, ok := v.(*ir.Instr)
	if !ok || in.Op != op {
		return nil, false
	}
	return in, true
}

// mBinC matches "op X, C" returning X and C.
func mBinC(v ir.Value, op ir.Opcode) (x ir.Value, c *ir.Const, ok bool) {
	in, isOp := mOp(v, op)
	if !isOp {
		return nil, nil, false
	}
	cc, isC := mConst(in.Args[1])
	if !isC {
		return nil, nil, false
	}
	return in.Args[0], cc, true
}

// intTy returns the integer type of a value (must be integer).
func intTy(v ir.Value) ir.IntType {
	return v.Type().(ir.IntType)
}

// cInt builds a constant of v's type.
func cInt(v ir.Value, n int64) *ir.Const {
	return ir.NewConst(intTy(v), n)
}

// isPow2 reports whether the constant is a power of two, returning
// log2.
func isPow2(c *ir.Const) (int, bool) {
	v := c.Val & c.Ty.Mask()
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}
