package instcombine

import (
	"math/rand"
	"testing"

	"veriopt/internal/alive"
	"veriopt/internal/interp"
	"veriopt/internal/ir"
)

// randFn synthesizes a random straight-line function exercising every
// binary opcode, compares, selects, and casts.
func randFn(rng *rand.Rand) *ir.Function {
	tys := []ir.IntType{ir.I8, ir.I16, ir.I32}
	ty := tys[rng.Intn(len(tys))]
	b := ir.NewBuilder("fuzz", ty, ty, ty)
	b.NewBlock("")
	vals := []ir.Value{b.Param(0), b.Param(1)}
	pick := func() ir.Value { return vals[rng.Intn(len(vals))] }
	n := 3 + rng.Intn(6)
	muls := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // binary op, constant RHS mostly
			ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
				ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem}
			op := ops[rng.Intn(len(ops))]
			if op == ir.OpMul {
				muls++
				if muls > 1 {
					op = ir.OpAdd
				}
			}
			var y ir.Value
			if op.IsDivRem() {
				y = ir.NewConst(ty, int64(1+rng.Intn(15))) // non-zero divisor
			} else if op.IsShift() {
				y = ir.NewConst(ty, int64(rng.Intn(ty.Bits)))
			} else if rng.Intn(3) == 0 {
				y = pick()
			} else {
				y = ir.NewConst(ty, int64(rng.Intn(40)-12))
			}
			fl := ir.Flags{}
			if rng.Intn(5) == 0 && (op == ir.OpAdd || op == ir.OpSub || op == ir.OpMul) {
				fl.NSW = true
			}
			vals = append(vals, b.BinF(op, pick(), y, fl))
		case 4, 5: // icmp + select
			preds := []ir.Pred{ir.PredEQ, ir.PredNE, ir.PredSLT, ir.PredUGT, ir.PredSLE, ir.PredULE}
			cmp := b.ICmp(preds[rng.Intn(len(preds))], pick(), pick())
			vals = append(vals, b.Select(cmp, pick(), pick()))
		case 6: // cast round trip
			narrow := ir.I8
			if ty.Bits <= 8 {
				break
			}
			tr := b.Cast(ir.OpTrunc, pick(), narrow)
			if rng.Intn(2) == 0 {
				vals = append(vals, b.Cast(ir.OpZExt, tr, ty))
			} else {
				vals = append(vals, b.Cast(ir.OpSExt, tr, ty))
			}
		default: // plain arithmetic on two existing values
			vals = append(vals, b.Bin(ir.OpAdd, pick(), pick()))
		}
	}
	b.Ret(vals[len(vals)-1])
	return b.Fn
}

// TestRunSoundOnRandomFunctions is the pass's fuzz harness: on random
// functions, Run's output must verify structurally, be proven a
// refinement by the symbolic checker (or at worst Inconclusive under
// a bounded budget), and agree with the interpreter on random inputs.
func TestRunSoundOnRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	opts := alive.DefaultOptions()
	opts.SolverBudget = 30000
	for iter := 0; iter < 80; iter++ {
		f := randFn(rng)
		if err := ir.VerifyFunc(f); err != nil {
			t.Fatalf("generator produced invalid function: %v", err)
		}
		g := Run(f)
		if err := ir.VerifyFunc(g); err != nil {
			t.Fatalf("iter %d: optimized output invalid: %v\nin:\n%s\nout:\n%s",
				iter, err, ir.FuncString(f), ir.FuncString(g))
		}
		res := alive.VerifyFuncs(f, g, opts)
		if res.Verdict == alive.SemanticError {
			t.Fatalf("iter %d: UNSOUND TRANSFORM\nin:\n%s\nout:\n%s\n%s",
				iter, ir.FuncString(f), ir.FuncString(g), res.Diag)
		}
		// Differential check on concrete inputs.
		for trial := 0; trial < 6; trial++ {
			args := []interp.Val{interp.V(rng.Uint64()), interp.V(rng.Uint64())}
			o1, e1 := interp.Run(f, args, interp.DefaultConfig())
			o2, e2 := interp.Run(g, args, interp.DefaultConfig())
			if e1 != nil || e2 != nil {
				t.Fatalf("iter %d: interp error %v %v", iter, e1, e2)
			}
			if o1.UB || o1.Ret.Poison {
				continue
			}
			if o2.UB {
				t.Fatalf("iter %d: output introduces UB on %v\nin:\n%s\nout:\n%s",
					iter, args, ir.FuncString(f), ir.FuncString(g))
			}
			if o2.Ret.Poison {
				t.Fatalf("iter %d: output more poisonous on %v\nin:\n%s\nout:\n%s",
					iter, args, ir.FuncString(f), ir.FuncString(g))
			}
			if o1.Ret.Bits != o2.Ret.Bits {
				t.Fatalf("iter %d: value mismatch on %v: %d vs %d\nin:\n%s\nout:\n%s",
					iter, args, o1.Ret.Bits, o2.Ret.Bits, ir.FuncString(f), ir.FuncString(g))
			}
		}
	}
}

func TestExtendedRules(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"or-xor-and", `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = or i32 %0, %1
  %4 = and i32 %0, %1
  %5 = xor i32 %3, %4
  ret i32 %5
}
`, "xor i32 %0, %1"},
		{"and-or-add", `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = and i32 %0, %1
  %4 = or i32 %0, %1
  %5 = add i32 %3, %4
  ret i32 %5
}
`, "add i32 %0, %1"},
		{"sub-and-mask", `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = and i32 %0, %1
  %4 = sub i32 %0, %3
  ret i32 %4
}
`, "and i32"},
		{"demorgan-and", `define i8 @f(i8 noundef %0, i8 noundef %1) {
  %3 = xor i8 %0, -1
  %4 = xor i8 %1, -1
  %5 = and i8 %3, %4
  ret i8 %5
}
`, "or i8 %0, %1"},
		{"icmp-zext-zero", `define i1 @f(i8 noundef %0) {
  %2 = zext i8 %0 to i32
  %3 = icmp eq i32 %2, 0
  ret i1 %3
}
`, "icmp eq i8 %0, 0"},
		{"icmp-zext-out-of-range", `define i1 @f(i8 noundef %0) {
  %2 = zext i8 %0 to i32
  %3 = icmp eq i32 %2, 700
  ret i1 %3
}
`, "ret i1 false"},
		{"select-common-op", `define i32 @f(i1 noundef %0, i32 noundef %1) {
  %3 = add i32 %1, 5
  %4 = add i32 %1, 9
  %5 = select i1 %0, i32 %3, i32 %4
  ret i32 %5
}
`, "select i1 %0, i32 5, i32 9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := checkSound(t, tc.src)
			text := ir.FuncString(g)
			if !containsStr(text, tc.want) {
				t.Errorf("missing %q in:\n%s", tc.want, text)
			}
		})
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
