package instcombine

import "veriopt/internal/ir"

// forwardLoads performs store-to-load forwarding within each basic
// block, the analogue of InstCombine's FindAvailableLoadedValue: a
// load from an alloca whose most recent same-block store is visible
// (with no intervening call that could access memory) is replaced by
// the stored value.
func forwardLoads(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		// available maps an alloca to the last value stored into it in
		// this block, invalidated by calls (conservatively: a callee
		// could not access a non-escaping alloca, but an alloca whose
		// address flows into a call can change; track escapes).
		escaped := escapedAllocas(f)
		available := map[*ir.Instr]ir.Value{}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				if a, ok := directAlloca(in.Args[1]); ok {
					available[a] = in.Args[0]
				}
			case ir.OpLoad:
				if a, ok := directAlloca(in.Args[0]); ok {
					if v, have := available[a]; have && v.Type().Equal(in.Ty) {
						ir.ReplaceAllUses(f, in, v)
						changed = true
					}
				}
			case ir.OpCall:
				// Calls may write allocas whose address escaped.
				for a := range available {
					if escaped[a] {
						delete(available, a)
					}
				}
			}
		}
	}
	return changed
}

// removeDeadAllocas deletes allocas that are never loaded and never
// escape, together with their stores — LLVM InstCombine's
// isAllocSiteRemovable cleanup.
func removeDeadAllocas(f *ir.Function) bool {
	escaped := escapedAllocas(f)
	loaded := map[*ir.Instr]bool{}
	stores := map[*ir.Instr][]*ir.Instr{}
	var allocas []*ir.Instr
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpAlloca:
			allocas = append(allocas, in)
		case ir.OpLoad:
			if a, ok := directAlloca(in.Args[0]); ok {
				loaded[a] = true
			}
		case ir.OpStore:
			if a, ok := directAlloca(in.Args[1]); ok {
				stores[a] = append(stores[a], in)
			}
		}
	})
	changed := false
	for _, a := range allocas {
		if escaped[a] || loaded[a] {
			continue
		}
		for _, st := range stores[a] {
			ir.RemoveInstr(st)
			changed = true
		}
		// The alloca itself is removed by DCE once unused.
	}
	return changed
}

// directAlloca returns the alloca a pointer value directly denotes.
func directAlloca(p ir.Value) (*ir.Instr, bool) {
	in, ok := p.(*ir.Instr)
	if !ok || in.Op != ir.OpAlloca {
		return nil, false
	}
	return in, true
}

// escapedAllocas finds allocas whose address is used by anything
// other than a direct load or the pointer operand of a store.
func escapedAllocas(f *ir.Function) map[*ir.Instr]bool {
	escaped := map[*ir.Instr]bool{}
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		check := func(v ir.Value, isSafeUse bool) {
			if a, ok := directAlloca(v); ok && !isSafeUse {
				escaped[a] = true
			}
		}
		switch in.Op {
		case ir.OpLoad:
			// The address operand is a safe use.
		case ir.OpStore:
			check(in.Args[0], false) // storing the address escapes it
		default:
			for _, a := range in.Args {
				check(a, false)
			}
			for _, inc := range in.Incs {
				check(inc.Val, false)
			}
		}
	})
	return escaped
}
