package rewrite

import (
	"fmt"

	"veriopt/internal/ir"
)

// mem2reg promotes non-escaping allocas with consistent access types
// to SSA values, inserting phi nodes where paths join — the
// "mem2reg-like behaviour" the paper observes emerging during the
// latency stage (§V-E, Fig. 10). The construction follows Braun et
// al.'s simple-and-efficient SSA algorithm: block-local defs first,
// then recursive lookups that pre-install phis to break cycles.
//
// It returns false (leaving f untouched) when nothing was promotable.
// The output is re-verified; on any inconsistency the function is
// restored, so the rule is safe to expose as a policy action.
func mem2reg(f *ir.Function) bool {
	allocas := promotableAllocas(f)
	if len(allocas) == 0 {
		return false
	}
	backup := ir.CloneFunc(f)
	p := &promoter{
		f:       f,
		preds:   ir.Preds(f),
		blockIn: map[promKey]ir.Value{},
		nextID:  0,
	}
	p.run(allocas)
	if err := ir.VerifyFunc(f); err != nil {
		// Restore from backup: replace contents wholesale.
		*f = *backup
		return false
	}
	return true
}

// promKey identifies the live-in value of one alloca at one block.
type promKey struct {
	a *ir.Instr
	b *ir.Block
}

type promoter struct {
	f       *ir.Function
	preds   map[*ir.Block][]*ir.Block
	blockIn map[promKey]ir.Value // resolved block-entry values
	nextID  int
}

// promotableAllocas finds non-escaping allocas whose loads and stores
// all agree with the allocated element type and that are loaded at
// least once.
func promotableAllocas(f *ir.Function) []*ir.Instr {
	type usage struct {
		loads, stores int
		consistent    bool
		escaped       bool
	}
	u := map[*ir.Instr]*usage{}
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpAlloca {
			u[in] = &usage{consistent: true}
		}
	})
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		mark := func(v ir.Value, safe bool, width ir.Type) {
			a, ok := v.(*ir.Instr)
			if !ok || a.Op != ir.OpAlloca {
				return
			}
			info, tracked := u[a]
			if !tracked {
				return
			}
			if !safe {
				info.escaped = true
				return
			}
			if width != nil && !width.Equal(a.AllocTy) {
				info.consistent = false
			}
		}
		switch in.Op {
		case ir.OpLoad:
			mark(in.Args[0], true, in.Ty)
			if a, ok := in.Args[0].(*ir.Instr); ok && a.Op == ir.OpAlloca {
				if info := u[a]; info != nil {
					info.loads++
				}
			}
		case ir.OpStore:
			mark(in.Args[1], true, in.Args[0].Type())
			mark(in.Args[0], false, nil) // address stored somewhere
			if a, ok := in.Args[1].(*ir.Instr); ok && a.Op == ir.OpAlloca {
				if info := u[a]; info != nil {
					info.stores++
				}
			}
		default:
			for _, arg := range in.Args {
				mark(arg, false, nil)
			}
			for _, inc := range in.Incs {
				mark(inc.Val, false, nil)
			}
		}
	})
	var out []*ir.Instr
	// Deterministic order: layout order of the allocas.
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op != ir.OpAlloca {
			return
		}
		info := u[in]
		if info != nil && !info.escaped && info.consistent && info.loads > 0 {
			out = append(out, in)
		}
	})
	return out
}

func (p *promoter) run(allocas []*ir.Instr) {
	promoted := map[*ir.Instr]bool{}
	for _, a := range allocas {
		promoted[a] = true
	}
	// Walk each block tracking the running definition of each alloca;
	// loads become the running value (or the block live-in), stores
	// update it and are deleted afterwards.
	type pendingLoad struct {
		load *ir.Instr
		a    *ir.Instr
	}
	var deadStores, deadLoads []*ir.Instr
	replacements := map[*ir.Instr]ir.Value{}
	var pendings []pendingLoad
	for _, b := range p.f.Blocks {
		running := map[*ir.Instr]ir.Value{}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				a, ok := in.Args[0].(*ir.Instr)
				if !ok || !promoted[a] {
					continue
				}
				if v, have := running[a]; have {
					replacements[in] = v
				} else {
					pendings = append(pendings, pendingLoad{load: in, a: a})
				}
				deadLoads = append(deadLoads, in)
			case ir.OpStore:
				a, ok := in.Args[1].(*ir.Instr)
				if !ok || !promoted[a] {
					continue
				}
				running[a] = in.Args[0]
				deadStores = append(deadStores, in)
			}
		}
	}
	// Resolve block live-ins (may insert phis). Loads pending in the
	// same block before any store see the block-entry value.
	for _, pl := range pendings {
		replacements[pl.load] = p.readVar(pl.a, pl.load.Parent)
	}
	// Apply replacements; a replacement may itself be a replaced load
	// (store of a loaded value), so chase the chain.
	resolve := func(v ir.Value) ir.Value {
		for {
			in, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			next, replaced := replacements[in]
			if !replaced {
				return v
			}
			v = next
		}
	}
	p.f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		for i, arg := range in.Args {
			in.Args[i] = resolve(arg)
		}
		for i := range in.Incs {
			in.Incs[i].Val = resolve(in.Incs[i].Val)
		}
	})
	for _, in := range deadLoads {
		ir.RemoveInstr(in)
	}
	for _, in := range deadStores {
		ir.RemoveInstr(in)
	}
	for a := range promoted {
		ir.RemoveInstr(a)
	}
	p.cleanTrivialPhis()
}

// readVar returns the live-in value of alloca a at block b, inserting
// phis at joins. The phi is recorded before visiting predecessors so
// loops terminate (Braun et al.).
func (p *promoter) readVar(a *ir.Instr, b *ir.Block) ir.Value {
	key := promKey{a, b}
	if v, ok := p.blockIn[key]; ok {
		return v
	}
	// Value flowing out of a predecessor: the last store in it, else
	// its own live-in.
	outOf := func(pred *ir.Block) ir.Value {
		var last ir.Value
		for _, in := range pred.Instrs {
			if in.Op == ir.OpStore && in.Args[1] == ir.Value(a) {
				last = in.Args[0]
			}
		}
		if last != nil {
			return last
		}
		return p.readVar(a, pred)
	}
	preds := p.preds[b]
	switch len(preds) {
	case 0:
		// Entry with no store before the load: uninitialized.
		v := ir.Value(&ir.Undef{Ty: a.AllocTy})
		p.blockIn[key] = v
		return v
	case 1:
		v := outOf(preds[0])
		p.blockIn[key] = v
		return v
	}
	p.nextID++
	phi := &ir.Instr{Op: ir.OpPhi, NameStr: fmt.Sprintf("m2r%d", p.nextID), Ty: a.AllocTy, Parent: b}
	b.Instrs = append([]*ir.Instr{phi}, b.Instrs...)
	p.blockIn[key] = phi // break cycles before recursing
	for _, pred := range preds {
		phi.Incs = append(phi.Incs, ir.Incoming{Val: outOf(pred), Block: pred})
	}
	return phi
}

// cleanTrivialPhis removes phis whose incomings are all the same
// value (or the phi itself), iterating to a fixpoint.
func (p *promoter) cleanTrivialPhis() {
	for {
		changed := false
		for _, b := range p.f.Blocks {
			for _, phi := range b.Phis() {
				var same ir.Value
				trivial := true
				for _, inc := range phi.Incs {
					if inc.Val == ir.Value(phi) || inc.Val == same {
						continue
					}
					if same != nil {
						trivial = false
						break
					}
					same = inc.Val
				}
				if !trivial || same == nil {
					continue
				}
				ir.ReplaceAllUses(p.f, phi, same)
				ir.RemoveInstr(phi)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
