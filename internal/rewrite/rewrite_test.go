package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"veriopt/internal/alive"
	"veriopt/internal/ir"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m.Funcs[0]
}

const o0Style = `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = alloca i32
  %4 = alloca i32
  store i32 %0, ptr %3
  store i32 %1, ptr %4
  %5 = load i32, ptr %3
  %6 = load i32, ptr %4
  %7 = mul i32 %5, 4
  %8 = add i32 %7, 0
  %9 = sub i32 %8, %6
  ret i32 %9
}
`

const diamondSrc = `define i32 @f(i32 noundef %0) {
entry:
  %1 = icmp slt i32 %0, 10
  br i1 %1, label %a, label %b

a:
  br label %end

b:
  %2 = add i32 %0, -12
  %3 = lshr i32 %2, 2
  %4 = add i32 %3, 3
  br label %end

end:
  %5 = phi i32 [ 0, %a ], [ %4, %b ]
  ret i32 %5
}
`

func TestSoundRulesAreSound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range append(Sound(), Extra()...) {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			for _, src := range []string{o0Style, diamondSrc} {
				f := parse(t, src)
				if !r.Applicable(f) {
					continue
				}
				g := ir.CloneFunc(f)
				if !r.Apply(g, rng) {
					t.Fatalf("Applicable true but Apply did nothing")
				}
				if err := ir.VerifyFunc(g); err != nil {
					t.Fatalf("rule broke structural invariants: %v\n%s", err, ir.FuncString(g))
				}
				res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
				if res.Verdict == alive.SemanticError {
					t.Fatalf("sound rule is unsound!\nbefore:\n%s\nafter:\n%s\n%s",
						ir.FuncString(f), ir.FuncString(g), res.Diag)
				}
			}
		})
	}
}

func TestUnsoundRulesAreRejectedSomewhere(t *testing.T) {
	// Each unsound rule must have at least one witness input where the
	// verifier catches it.
	witnesses := map[string]string{
		"unsound-sdiv-as-lshr": `define i32 @f(i32 noundef %0) {
  %2 = sdiv i32 %0, 4
  ret i32 %2
}
`,
		"unsound-srem-as-and": `define i32 @f(i32 noundef %0) {
  %2 = srem i32 %0, 8
  ret i32 %2
}
`,
		"unsound-ashr-as-lshr": `define i32 @f(i32 noundef %0) {
  %2 = ashr i32 %0, 3
  ret i32 %2
}
`,
		"unsound-add-flags": `define i8 @f(i8 noundef %0) {
  %2 = add i8 %0, 1
  ret i8 %2
}
`,
		"unsound-overflow-cmp": `define i1 @f(i32 noundef %0) {
  %2 = add i32 %0, 5
  %3 = icmp slt i32 %0, %2
  ret i1 %3
}
`,
		"unsound-sub-commute": `define i32 @f(i32 noundef %0, i32 noundef %1) {
  %3 = sub i32 %0, %1
  ret i32 %3
}
`,
		"unsound-ext-swap": `define i64 @f(i8 noundef %0) {
  %2 = zext i8 %0 to i64
  ret i64 %2
}
`,
		"unsound-drop-store": `define i32 @f(i32 noundef %0) {
  %2 = alloca i32
  store i32 %0, ptr %2
  %3 = load i32, ptr %2
  ret i32 %3
}
`,
		"unsound-drop-call": `declare i32 @g(i32)

define i32 @f(i32 noundef %0) {
  %2 = call i32 @g(i32 %0)
  ret i32 %2
}
`,
		"unsound-off-by-one": `define i32 @f(i32 noundef %0) {
  %2 = add i32 %0, 100
  ret i32 %2
}
`,
		"unsound-select-swap": `define i32 @f(i1 noundef %0, i32 noundef %1) {
  %3 = select i1 %0, i32 %1, i32 7
  ret i32 %3
}
`,
	}
	rng := rand.New(rand.NewSource(2))
	for _, r := range Unsound() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			src, ok := witnesses[r.Name]
			if !ok {
				t.Fatalf("no witness input for %s", r.Name)
			}
			f := parse(t, src)
			if !r.Applicable(f) {
				t.Fatalf("rule not applicable to its witness")
			}
			g := ir.CloneFunc(f)
			if !r.Apply(g, rng) {
				t.Fatalf("Apply did nothing on witness")
			}
			res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
			if res.Verdict != alive.SemanticError {
				t.Fatalf("verifier failed to reject unsound rewrite (verdict %v)\nbefore:\n%s\nafter:\n%s",
					res.Verdict, ir.FuncString(f), ir.FuncString(g))
			}
		})
	}
}

func TestUnsoundRuleSometimesLucky(t *testing.T) {
	// ashr->lshr is accidentally sound when the operand is known
	// non-negative — the verifier must accept that case, mirroring an
	// LLM hallucination that happens to be right.
	src := `define i32 @f(i32 noundef %0) {
  %2 = lshr i32 %0, 1
  %3 = ashr i32 %2, 3
  ret i32 %3
}
`
	f := parse(t, src)
	var rule *Rule
	for _, r := range Unsound() {
		if r.Name == "unsound-ashr-as-lshr" {
			rule = r
		}
	}
	g := ir.CloneFunc(f)
	if !rule.Apply(g, nil) {
		t.Fatal("rule did not apply")
	}
	res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
	if res.Verdict != alive.Equivalent {
		t.Fatalf("lucky hallucination should verify: %v %s", res.Verdict, res.Diag)
	}
}

func TestCorruptionsBreakParsing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := parse(t, o0Style)
	text := ir.FuncString(f)
	for _, r := range Corruptions() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			bad := r.ApplyText(text, rng)
			if bad == text {
				t.Fatal("corruption did not change the text")
			}
			g, err := ir.ParseFunc(bad)
			if err == nil {
				if verr := ir.VerifyFunc(g); verr == nil {
					t.Fatalf("corrupted text still parses and verifies:\n%s", bad)
				}
			}
		})
	}
}

func TestDiamondToSelect(t *testing.T) {
	f := parse(t, diamondSrc)
	g := ir.CloneFunc(f)
	var rule *Rule
	for _, r := range Extra() {
		if r.Name == "extra-diamond-to-select" {
			rule = r
		}
	}
	if !rule.Applicable(g) {
		t.Fatal("diamond not detected")
	}
	if !rule.Apply(g, nil) {
		t.Fatal("apply failed")
	}
	if err := ir.VerifyFunc(g); err != nil {
		t.Fatalf("broken output: %v\n%s", err, ir.FuncString(g))
	}
	if len(g.Blocks) != 1 {
		t.Errorf("expected a single block after folding, got %d:\n%s", len(g.Blocks), ir.FuncString(g))
	}
	if !strings.Contains(ir.FuncString(g), "select") {
		t.Errorf("no select emitted:\n%s", ir.FuncString(g))
	}
	res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
	if res.Verdict != alive.Equivalent {
		t.Fatalf("diamond fold unsound: %s", res.Diag)
	}
}

func TestFoldConstBranch(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
entry:
  br i1 true, label %a, label %b

a:
  ret i32 1

b:
  ret i32 2
}
`
	f := parse(t, src)
	g := ir.CloneFunc(f)
	if !foldConstBranch(g) {
		t.Fatal("const branch not folded")
	}
	if err := ir.VerifyFunc(g); err != nil {
		t.Fatalf("%v\n%s", err, ir.FuncString(g))
	}
	if len(g.Blocks) != 2 {
		t.Errorf("dead block not pruned: %d blocks", len(g.Blocks))
	}
	res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
	if res.Verdict != alive.Equivalent {
		t.Fatalf("fold unsound: %s", res.Diag)
	}
}

func TestPromoteAlloca(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
entry:
  %1 = alloca i32
  store i32 %0, ptr %1
  %2 = icmp sgt i32 %0, 0
  br i1 %2, label %a, label %b

a:
  %3 = load i32, ptr %1
  %4 = add i32 %3, 1
  ret i32 %4

b:
  %5 = load i32, ptr %1
  ret i32 %5
}
`
	f := parse(t, src)
	g := ir.CloneFunc(f)
	if !promoteAlloca(g) {
		t.Fatal("alloca not promoted")
	}
	if err := ir.VerifyFunc(g); err != nil {
		t.Fatalf("%v\n%s", err, ir.FuncString(g))
	}
	if strings.Contains(ir.FuncString(g), "alloca") {
		t.Errorf("alloca still present:\n%s", ir.FuncString(g))
	}
	res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
	if res.Verdict != alive.Equivalent {
		t.Fatalf("promotion unsound: %s", res.Diag)
	}
}

func TestAllRulesStableOrder(t *testing.T) {
	a := All()
	b := All()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatal("All() inconsistent")
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("rule order unstable at %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
	seen := map[string]bool{}
	for _, r := range a {
		if seen[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		seen[r.Name] = true
		if r.Kind == KindCorrupt && r.ApplyText == nil {
			t.Errorf("corrupt rule %s lacks ApplyText", r.Name)
		}
		if r.Kind != KindCorrupt && r.Apply == nil {
			t.Errorf("rule %s lacks Apply", r.Name)
		}
	}
}

func TestFoldConstSwitch(t *testing.T) {
	src := `define i32 @f(i32 noundef %0) {
entry:
  switch i32 2, label %def [ i32 1, label %a i32 2, label %b ]

a:
  ret i32 10

b:
  ret i32 20

def:
  ret i32 -1
}
`
	f := parse(t, src)
	g := ir.CloneFunc(f)
	if !foldConstBranch(g) {
		t.Fatal("constant switch not folded")
	}
	if err := ir.VerifyFunc(g); err != nil {
		t.Fatalf("%v\n%s", err, ir.FuncString(g))
	}
	if len(g.Blocks) != 2 {
		t.Errorf("dead switch arms not pruned: %d blocks\n%s", len(g.Blocks), ir.FuncString(g))
	}
	res := alive.VerifyFuncs(f, g, alive.DefaultOptions())
	if res.Verdict != alive.Equivalent {
		t.Fatalf("fold unsound: %s", res.Diag)
	}
}
