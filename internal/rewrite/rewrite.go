// Package rewrite defines the action space of the simulated LLM
// policy (internal/policy): a library of IR transformations spanning
// four kinds.
//
//   - Sound: instcombine-style steps (via instcombine.StepAt) plus
//     memory cleanups — applying all of them reproduces the reference
//     pass's output.
//   - Extra: sound transformations *beyond* instcombine (constant
//     branch folding, block merging, diamond-to-select, alloca
//     promotion) — the source of the paper's emergent optimizations
//     (Fig. 6/10): verifiably correct outputs that beat the
//     hand-written pass.
//   - Unsound: plausible-but-wrong rewrites modeled on real LLM
//     hallucinations (overflow-ignoring folds, sign confusion,
//     dropped side effects). The Alive2-style checker rejects them;
//     occasionally one is accidentally sound for the specific code,
//     exactly as with a real LLM.
//   - Corrupt: text-level damage producing genuine syntax errors
//     (undefined references, bad mnemonics, truncation).
//
// Rules are deterministic given the same function and RNG so that
// greedy decoding is reproducible (paper §IV-B).
package rewrite

import (
	"math/rand"
	"strings"

	"veriopt/internal/instcombine"
	"veriopt/internal/ir"
)

// Kind classifies a rule.
type Kind int

// Rule kinds.
const (
	KindSound Kind = iota
	KindExtra
	KindUnsound
	KindCorrupt
)

var kindNames = [...]string{"sound", "extra", "unsound", "corrupt"}

// String returns the kind name.
func (k Kind) String() string { return kindNames[k] }

// Rule is one transformation in the action space. IR-level rules
// implement Apply; corruption rules implement ApplyText instead and
// terminate generation.
type Rule struct {
	Name string
	Kind Kind
	// Applicable reports whether the rule can fire on f. Corruptions
	// are always applicable (an LLM can emit garbage at any time).
	Applicable func(f *ir.Function) bool
	// Apply mutates f, returning false if nothing matched.
	Apply func(f *ir.Function, rng *rand.Rand) bool
	// ApplyText damages printed IR (corrupt rules only).
	ApplyText func(text string, rng *rand.Rand) string
}

func always(*ir.Function) bool { return true }

// Sound returns the sound instcombine-equivalent rules, plus a
// metric-neutral cosmetic reorder. The cosmetic rule models the base
// LLM's dominant "different correct" behaviour (Table I discussion:
// different output that improves nothing — only 1.2% of the base
// model's outputs actually got faster).
func Sound() []*Rule {
	return []*Rule{
		{
			Name: "cosmetic-reorder",
			Kind: KindSound,
			Applicable: func(f *ir.Function) bool {
				return len(swappablePairs(f)) > 0
			},
			Apply: func(f *ir.Function, rng *rand.Rand) bool {
				pairs := swappablePairs(f)
				if len(pairs) == 0 {
					return false
				}
				pick := 0
				if rng != nil {
					pick = rng.Intn(len(pairs))
				}
				p := pairs[pick]
				b := p.block
				b.Instrs[p.idx], b.Instrs[p.idx+1] = b.Instrs[p.idx+1], b.Instrs[p.idx]
				return true
			},
		},
		{
			Name: "combine-step",
			Kind: KindSound,
			Applicable: func(f *ir.Function) bool {
				return len(instcombine.Sites(f)) > 0
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				sites := instcombine.Sites(f)
				if len(sites) == 0 {
					return false
				}
				s := sites[0]
				return instcombine.StepAt(f, s.Block, s.Instr)
			},
		},
		{
			Name: "forward-loads",
			Kind: KindSound,
			Applicable: func(f *ir.Function) bool {
				g := ir.CloneFunc(f)
				return instcombine.ForwardLoadsStep(g)
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return instcombine.ForwardLoadsStep(f)
			},
		},
		{
			Name: "remove-dead-allocas",
			Kind: KindSound,
			Applicable: func(f *ir.Function) bool {
				g := ir.CloneFunc(f)
				return instcombine.RemoveDeadAllocasStep(g)
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return instcombine.RemoveDeadAllocasStep(f)
			},
		},
	}
}

// swapPair is a pair of adjacent, independent, pure instructions that
// may be exchanged without observable effect.
type swapPair struct {
	block *ir.Block
	idx   int
}

// swappablePairs lists adjacent instruction pairs that are safe to
// swap: both pure (no memory, calls, phis, terminators, or trapping
// division) and with no def-use edge between them.
func swappablePairs(f *ir.Function) []swapPair {
	pure := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpAlloca, ir.OpPhi:
			return false
		}
		if in.Op.IsTerminator() || in.Op.IsDivRem() {
			return false
		}
		return true
	}
	var out []swapPair
	for _, b := range f.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			a, c := b.Instrs[i], b.Instrs[i+1]
			if !pure(a) || !pure(c) {
				continue
			}
			uses := false
			for _, arg := range c.Args {
				if arg == ir.Value(a) {
					uses = true
					break
				}
			}
			if !uses {
				out = append(out, swapPair{block: b, idx: i})
			}
		}
	}
	return out
}

// firstInstr finds the first instruction satisfying pred, in layout
// order.
func firstInstr(f *ir.Function, pred func(*ir.Instr) bool) *ir.Instr {
	var found *ir.Instr
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if found == nil && pred(in) {
			found = in
		}
	})
	return found
}

func hasInstr(f *ir.Function, pred func(*ir.Instr) bool) bool {
	return firstInstr(f, pred) != nil
}

func pow2Const(v ir.Value) bool {
	c, ok := v.(*ir.Const)
	if !ok {
		return false
	}
	u := c.Val & c.Ty.Mask()
	return u != 0 && u&(u-1) == 0
}

func log2(u uint64) int64 {
	n := int64(0)
	for u > 1 {
		u >>= 1
		n++
	}
	return n
}

// Unsound returns the hallucination rules.
func Unsound() []*Rule {
	return []*Rule{
		{
			// sdiv X, 2^k -> lshr X, k: wrong for negative X.
			Name: "unsound-sdiv-as-lshr",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSDiv && pow2Const(in.Args[1])
				})
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSDiv && pow2Const(in.Args[1])
				})
				if in == nil {
					return false
				}
				c := in.Args[1].(*ir.Const)
				in.Op = ir.OpLShr
				in.Args[1] = ir.NewConst(c.Ty, log2(c.Val&c.Ty.Mask()))
				in.Flags = ir.Flags{}
				return true
			},
		},
		{
			// srem X, 2^k -> and X, 2^k-1: wrong for negative X.
			Name: "unsound-srem-as-and",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSRem && pow2Const(in.Args[1])
				})
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSRem && pow2Const(in.Args[1])
				})
				if in == nil {
					return false
				}
				c := in.Args[1].(*ir.Const)
				in.Op = ir.OpAnd
				in.Args[1] = &ir.Const{Ty: c.Ty, Val: (c.Val - 1) & c.Ty.Mask()}
				in.Flags = ir.Flags{}
				return true
			},
		},
		{
			// ashr -> lshr: sign confusion; accidentally sound when the
			// operand is known non-negative.
			Name: "unsound-ashr-as-lshr",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpAShr })
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpAShr })
				if in == nil {
					return false
				}
				in.Op = ir.OpLShr
				return true
			},
		},
		{
			// Adding nsw/nuw the source didn't have makes the target
			// more poisonous.
			Name: "unsound-add-flags",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					return (in.Op == ir.OpAdd || in.Op == ir.OpSub || in.Op == ir.OpMul) && !in.Flags.NSW
				})
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					return (in.Op == ir.OpAdd || in.Op == ir.OpSub || in.Op == ir.OpMul) && !in.Flags.NSW
				})
				if in == nil {
					return false
				}
				in.Flags.NSW = true
				in.Flags.NUW = true
				return true
			},
		},
		{
			// icmp slt X, (add X, C) with C>0 -> true: ignores overflow.
			Name: "unsound-overflow-cmp",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return findOverflowCmp(f) != nil
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := findOverflowCmp(f)
				if in == nil {
					return false
				}
				ir.ReplaceAllUses(f, in, ir.NewConst(ir.I1, 1))
				ir.DeadCodeElim(f, nil)
				return true
			},
		},
		{
			// sub X, Y "commutes" — flat wrong.
			Name: "unsound-sub-commute",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSub && in.Args[0] != in.Args[1]
				})
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSub && in.Args[0] != in.Args[1]
				})
				if in == nil {
					return false
				}
				in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
				return true
			},
		},
		{
			// zext <-> sext swap: wrong when the sign bit can be set.
			Name: "unsound-ext-swap",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpZExt || in.Op == ir.OpSExt
				})
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpZExt || in.Op == ir.OpSExt
				})
				if in == nil {
					return false
				}
				if in.Op == ir.OpZExt {
					in.Op = ir.OpSExt
				} else {
					in.Op = ir.OpZExt
				}
				return true
			},
		},
		{
			// Remove a store whose value is still observed.
			Name: "unsound-drop-store",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpStore })
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpStore })
				if in == nil {
					return false
				}
				ir.RemoveInstr(in)
				return true
			},
		},
		{
			// Remove an external call (side effects vanish).
			Name: "unsound-drop-call",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpCall })
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpCall })
				if in == nil {
					return false
				}
				if in.HasResult() {
					w := in.Ty.(ir.IntType)
					ir.ReplaceAllUses(f, in, ir.NewConst(w, 0))
				}
				ir.RemoveInstr(in)
				return true
			},
		},
		{
			// Perturb a constant by one (botched mental arithmetic,
			// paper Fig. 12's failure family).
			Name: "unsound-off-by-one",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					if !in.Op.IsBinary() {
						return false
					}
					_, ok := in.Args[1].(*ir.Const)
					return ok
				})
			},
			Apply: func(f *ir.Function, rng *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					if !in.Op.IsBinary() {
						return false
					}
					_, ok := in.Args[1].(*ir.Const)
					return ok
				})
				if in == nil {
					return false
				}
				c := in.Args[1].(*ir.Const)
				delta := int64(1)
				if rng != nil && rng.Intn(2) == 0 {
					delta = -1
				}
				in.Args[1] = ir.NewConst(c.Ty, c.Signed()+delta)
				return true
			},
		},
		{
			// Swap select arms.
			Name: "unsound-select-swap",
			Kind: KindUnsound,
			Applicable: func(f *ir.Function) bool {
				return hasInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSelect && in.Args[1] != in.Args[2]
				})
			},
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				in := firstInstr(f, func(in *ir.Instr) bool {
					return in.Op == ir.OpSelect && in.Args[1] != in.Args[2]
				})
				if in == nil {
					return false
				}
				in.Args[1], in.Args[2] = in.Args[2], in.Args[1]
				return true
			},
		},
	}
}

func findOverflowCmp(f *ir.Function) *ir.Instr {
	return firstInstr(f, func(in *ir.Instr) bool {
		if in.Op != ir.OpICmp || (in.Pred != ir.PredSLT && in.Pred != ir.PredSGT) {
			return false
		}
		x, y := in.Args[0], in.Args[1]
		if in.Pred == ir.PredSGT {
			x, y = y, x // normalize to slt x, y
		}
		add, ok := y.(*ir.Instr)
		if !ok || add.Op != ir.OpAdd || add.Args[0] != x {
			return false
		}
		c, ok := add.Args[1].(*ir.Const)
		return ok && c.Signed() > 0
	})
}

// Corruptions returns the text-level damage rules.
func Corruptions() []*Rule {
	return []*Rule{
		{
			Name: "corrupt-undefined-ref", Kind: KindCorrupt, Applicable: always,
			ApplyText: func(text string, rng *rand.Rand) string {
				// Rename the first operand occurrence of a %N ref on a
				// non-defining position to an undefined name.
				lines := strings.Split(text, "\n")
				for i, l := range lines {
					if idx := strings.LastIndex(l, "%"); idx > 0 && strings.Contains(l, "= ") && idx > strings.Index(l, "=") {
						lines[i] = l[:idx] + "%undefined_val" + trailingPunct(l[idx:])
						return strings.Join(lines, "\n")
					}
				}
				return text + "\n%broken"
			},
		},
		{
			Name: "corrupt-bad-mnemonic", Kind: KindCorrupt, Applicable: always,
			ApplyText: func(text string, rng *rand.Rand) string {
				for _, op := range []string{" add ", " mul ", " sub ", " load ", " icmp ", " and ", " xor "} {
					if strings.Contains(text, op) {
						return strings.Replace(text, op, " f"+strings.TrimSpace(op)+"q ", 1)
					}
				}
				return strings.Replace(text, "ret ", "retq ", 1)
			},
		},
		{
			Name: "corrupt-truncate", Kind: KindCorrupt, Applicable: always,
			ApplyText: func(text string, rng *rand.Rand) string {
				lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
				if len(lines) <= 2 {
					return "define"
				}
				keep := len(lines)/2 + 1
				return strings.Join(lines[:keep], "\n") + "\n"
			},
		},
		{
			Name: "corrupt-type-mismatch", Kind: KindCorrupt, Applicable: always,
			ApplyText: func(text string, rng *rand.Rand) string {
				// Change one operand's type annotation, leaving the
				// instruction type intact -> type check fails.
				if i := strings.Index(text, "= add i32"); i >= 0 {
					return text[:i] + "= add i33" + text[i+len("= add i32"):]
				}
				if i := strings.Index(text, "i32"); i >= 0 {
					return text[:i] + "i31" + text[i+3:]
				}
				return strings.Replace(text, "i64", "i63", 1)
			},
		},
		{
			Name: "corrupt-duplicate-def", Kind: KindCorrupt, Applicable: always,
			ApplyText: func(text string, rng *rand.Rand) string {
				lines := strings.Split(text, "\n")
				for i, l := range lines {
					if strings.Contains(l, " = ") {
						// Duplicate a defining line: redefinition error.
						out := append([]string{}, lines[:i+1]...)
						out = append(out, l)
						out = append(out, lines[i+1:]...)
						return strings.Join(out, "\n")
					}
				}
				return text
			},
		},
		{
			Name: "corrupt-stray-tokens", Kind: KindCorrupt, Applicable: always,
			ApplyText: func(text string, rng *rand.Rand) string {
				return strings.Replace(text, "{\n", "{\n  Sure! Here is the optimized IR:\n", 1)
			},
		},
	}
}

func trailingPunct(s string) string {
	out := ""
	for _, r := range s {
		if r == ',' || r == ')' || r == ']' {
			out += string(r)
		}
	}
	return out
}

// All returns every rule in a stable order: sound, extra, unsound,
// corrupt. Feature indices in the policy depend on this ordering.
func All() []*Rule {
	var out []*Rule
	out = append(out, Sound()...)
	out = append(out, Extra()...)
	out = append(out, Unsound()...)
	out = append(out, Corruptions()...)
	return out
}
