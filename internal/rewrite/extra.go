package rewrite

import (
	"math/rand"

	"veriopt/internal/ir"
)

// Extra returns the sound rules beyond instcombine's scope — the
// simplifycfg- and mem2reg-flavoured transformations whose discovery
// the paper attributes to reinforcement learning (Fig. 10: "emergent
// learning of simplifycfg-style behavior").
func Extra() []*Rule {
	return []*Rule{
		{
			Name: "extra-fold-const-branch", Kind: KindExtra,
			Applicable: func(f *ir.Function) bool { return findConstBranch(f) != nil },
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return foldConstBranch(f)
			},
		},
		{
			Name: "extra-merge-blocks", Kind: KindExtra,
			Applicable: func(f *ir.Function) bool { return canMergeAny(f) },
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return mergeBlocks(f)
			},
		},
		{
			Name: "extra-diamond-to-select", Kind: KindExtra,
			Applicable: func(f *ir.Function) bool { return findDiamond(f) != nil },
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return diamondToSelect(f)
			},
		},
		{
			Name: "extra-promote-alloca", Kind: KindExtra,
			Applicable: func(f *ir.Function) bool { return findPromotable(f) != nil },
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return promoteAlloca(f)
			},
		},
		{
			Name: "extra-mem2reg", Kind: KindExtra,
			Applicable: func(f *ir.Function) bool { return len(promotableAllocas(f)) > 0 },
			Apply: func(f *ir.Function, _ *rand.Rand) bool {
				return mem2reg(f)
			},
		},
	}
}

func findConstBranch(f *ir.Function) *ir.Instr {
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || (t.Op != ir.OpCondBr && t.Op != ir.OpSwitch) {
			continue
		}
		if _, ok := t.Args[0].(*ir.Const); ok {
			return t
		}
	}
	return nil
}

// foldConstBranch rewrites `br i1 const, A, B` (or a switch on a
// constant) into an unconditional branch, fixes phis in the
// no-longer-reached successors, and prunes blocks that become
// unreachable.
func foldConstBranch(f *ir.Function) bool {
	t := findConstBranch(f)
	if t == nil {
		return false
	}
	c := t.Args[0].(*ir.Const)
	from := t.Parent
	var taken *ir.Block
	var dropped []*ir.Block
	if t.Op == ir.OpCondBr {
		taken, dropped = t.Succs[0], []*ir.Block{t.Succs[1]}
		if c.IsZero() {
			taken, dropped = t.Succs[1], []*ir.Block{t.Succs[0]}
		}
	} else {
		// Switch: pick the matching case, else the default.
		taken = t.Succs[0]
		for i, cc := range t.Cases {
			if cc.Val&cc.Ty.Mask() == c.Val&c.Ty.Mask() {
				taken = t.Succs[i+1]
				break
			}
		}
		seen := map[*ir.Block]bool{taken: true}
		for _, s := range t.Succs {
			if !seen[s] {
				seen[s] = true
				dropped = append(dropped, s)
			}
		}
	}
	t.Op = ir.OpBr
	t.Args = nil
	t.Cases = nil
	t.Succs = []*ir.Block{taken}
	// Remove the dead phi incomings on the dropped edges.
	for _, d := range dropped {
		removePhiIncoming(d, from)
	}
	pruneUnreachable(f)
	return true
}

func removePhiIncoming(b *ir.Block, pred *ir.Block) {
	for _, in := range b.Phis() {
		for i, inc := range in.Incs {
			if inc.Block == pred {
				in.Incs = append(in.Incs[:i], in.Incs[i+1:]...)
				break
			}
		}
	}
}

// pruneUnreachable deletes blocks not reachable from entry, fixing
// phis that referenced them.
func pruneUnreachable(f *ir.Function) bool {
	reach := ir.Reachable(f)
	if len(reach) == len(f.Blocks) {
		return false
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
			continue
		}
		for _, s := range b.Succs() {
			if reach[s] {
				removePhiIncoming(s, b)
			}
		}
	}
	f.Blocks = kept
	// Single-incoming phis collapse to their value.
	for _, b := range f.Blocks {
		for _, in := range b.Phis() {
			if len(in.Incs) == 1 {
				ir.ReplaceAllUses(f, in, in.Incs[0].Val)
				ir.RemoveInstr(in)
			}
		}
	}
	ir.DeadCodeElim(f, nil)
	return true
}

func canMergeAny(f *ir.Function) bool {
	_, _, ok := findMergePair(f)
	return ok
}

// findMergePair locates (b, c) where b ends in an unconditional br to
// c, c has exactly one predecessor, and c is not the entry.
func findMergePair(f *ir.Function) (*ir.Block, *ir.Block, bool) {
	preds := ir.Preds(f)
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		c := t.Succs[0]
		if c == f.Entry() || c == b || len(preds[c]) != 1 {
			continue
		}
		return b, c, true
	}
	return nil, nil, false
}

// mergeBlocks splices a single-predecessor successor into its
// predecessor.
func mergeBlocks(f *ir.Function) bool {
	b, c, ok := findMergePair(f)
	if !ok {
		return false
	}
	// Collapse c's phis (single incoming from b).
	for _, in := range c.Phis() {
		if len(in.Incs) != 1 {
			return false
		}
		ir.ReplaceAllUses(f, in, in.Incs[0].Val)
	}
	// Drop b's terminator and c's phis, splice the rest of c into b.
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	for _, in := range c.Instrs {
		if in.Op == ir.OpPhi {
			continue
		}
		in.Parent = b
		b.Instrs = append(b.Instrs, in)
	}
	// Successors of c now see b as the predecessor.
	for _, s := range c.Succs() {
		for _, in := range s.Phis() {
			for i := range in.Incs {
				if in.Incs[i].Block == c {
					in.Incs[i].Block = b
				}
			}
		}
	}
	// Remove c.
	for i, blk := range f.Blocks {
		if blk == c {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
	return true
}

// diamond describes an if-then-else (or if-then) region convertible
// to a select.
type diamond struct {
	head  *ir.Block
	left  *ir.Block // may be nil (edge directly to join)
	right *ir.Block // may be nil
	join  *ir.Block
}

// findDiamond locates a two-armed region whose arms are empty or
// contain only speculatable instructions and that joins in a block
// starting with phis.
func findDiamond(f *ir.Function) *diamond {
	preds := ir.Preds(f)
	for _, h := range f.Blocks {
		t := h.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		a, b := t.Succs[0], t.Succs[1]
		join, la, lb := diamondJoin(h, a, b, preds)
		if join == nil {
			continue
		}
		if len(join.Phis()) == 0 {
			continue
		}
		if la != nil && !speculatable(la) {
			continue
		}
		if lb != nil && !speculatable(lb) {
			continue
		}
		return &diamond{head: h, left: la, right: lb, join: join}
	}
	return nil
}

// diamondJoin decides whether a and b converge immediately into a
// shared join block; each arm is either the join itself (empty arm)
// or a single block that unconditionally branches to the join and has
// one predecessor.
func diamondJoin(h, a, b *ir.Block, preds map[*ir.Block][]*ir.Block) (join, armA, armB *ir.Block) {
	armTarget := func(x *ir.Block) (*ir.Block, *ir.Block) {
		// Returns (join candidate, arm block or nil).
		if t := x.Term(); t != nil && t.Op == ir.OpBr && len(preds[x]) == 1 && x != h {
			return t.Succs[0], x
		}
		return x, nil
	}
	if a == b {
		return nil, nil, nil
	}
	ja, la := armTarget(a)
	jb, lb := armTarget(b)
	if ja != jb || ja == h {
		return nil, nil, nil
	}
	// The join must have exactly the two arm predecessors.
	if len(preds[ja]) != 2 {
		return nil, nil, nil
	}
	return ja, la, lb
}

// speculatable reports whether every non-terminator instruction in
// the block can be executed unconditionally (no memory, calls, or
// trapping ops).
func speculatable(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if in.Op.IsTerminator() {
			continue
		}
		switch in.Op {
		case ir.OpLoad, ir.OpStore, ir.OpCall, ir.OpAlloca, ir.OpPhi:
			return false
		}
		if in.Op.IsDivRem() {
			// Only constant non-zero divisors are safe to speculate.
			c, ok := in.Args[1].(*ir.Const)
			if !ok || c.IsZero() || (c.IsAllOnes() && (in.Op == ir.OpSDiv || in.Op == ir.OpSRem)) {
				return false
			}
		}
	}
	return true
}

// diamondToSelect hoists both arms into the head and replaces the
// join's phis with selects — the simplifycfg transformation of the
// paper's Fig. 10.
func diamondToSelect(f *ir.Function) bool {
	d := findDiamond(f)
	if d == nil {
		return false
	}
	t := d.head.Term()
	cond := t.Args[0]

	// Rebuild the head: body, hoisted arm instructions, new selects,
	// then the (rewritten) terminator.
	body := append([]*ir.Instr{}, d.head.Instrs[:len(d.head.Instrs)-1]...)
	hoist := func(arm *ir.Block) {
		if arm == nil {
			return
		}
		for _, in := range arm.Instrs[:len(arm.Instrs)-1] {
			in.Parent = d.head
			body = append(body, in)
		}
	}
	hoist(d.left)
	hoist(d.right)

	// Map each phi to a select over the incoming values. d.left is
	// the true-side arm by construction (nil if the true edge goes
	// straight to the join), d.right the false side.
	for _, phi := range d.join.Phis() {
		var tv, fv ir.Value
		for _, inc := range phi.Incs {
			switch {
			case d.left != nil && inc.Block == d.left:
				tv = inc.Val
			case d.right != nil && inc.Block == d.right:
				fv = inc.Val
			case inc.Block == d.head && d.left == nil:
				tv = inc.Val
			case inc.Block == d.head && d.right == nil:
				fv = inc.Val
			}
		}
		if tv == nil || fv == nil {
			return false
		}
		sel := &ir.Instr{Op: ir.OpSelect, NameStr: phi.NameStr + ".sel", Ty: phi.Ty,
			Args: []ir.Value{cond, tv, fv}, Parent: d.head}
		body = append(body, sel)
		ir.ReplaceAllUses(f, phi, sel)
		ir.RemoveInstr(phi)
	}
	d.head.Instrs = append(body, t)

	// Head now branches straight to the join.
	t.Op = ir.OpBr
	t.Args = nil
	t.Succs = []*ir.Block{d.join}
	pruneUnreachable(f)
	mergeBlocks(f)
	return true
}

// findPromotable locates a non-escaping alloca with exactly one store
// whose block dominates every load (and precedes them within its own
// block).
func findPromotable(f *ir.Function) *ir.Instr {
	type info struct {
		stores []*ir.Instr
		loads  []*ir.Instr
		escape bool
	}
	infos := map[*ir.Instr]*info{}
	// order fixes the candidate scan order (map iteration would make
	// the promoted alloca vary run to run).
	var order []*ir.Instr
	get := func(a *ir.Instr) *info {
		if infos[a] == nil {
			infos[a] = &info{}
			order = append(order, a)
		}
		return infos[a]
	}
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			if a, ok := in.Args[0].(*ir.Instr); ok && a.Op == ir.OpAlloca {
				get(a).loads = append(get(a).loads, in)
				return
			}
		case ir.OpStore:
			if a, ok := in.Args[1].(*ir.Instr); ok && a.Op == ir.OpAlloca {
				st := get(a)
				st.stores = append(st.stores, in)
			}
			if a, ok := in.Args[0].(*ir.Instr); ok && a.Op == ir.OpAlloca {
				get(a).escape = true
			}
			return
		}
		for _, arg := range in.Args {
			if a, ok := arg.(*ir.Instr); ok && a.Op == ir.OpAlloca && in.Op != ir.OpLoad {
				get(a).escape = true
			}
		}
	})
	idom := ir.Dominators(f)
	pos := map[*ir.Instr]int{}
	i := 0
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) { pos[in] = i; i++ })
	for _, a := range order {
		inf := infos[a]
		if inf.escape || len(inf.stores) != 1 || len(inf.loads) == 0 {
			continue
		}
		st := inf.stores[0]
		ok := true
		for _, ld := range inf.loads {
			if st.Parent == ld.Parent {
				if pos[st] > pos[ld] {
					ok = false
					break
				}
			} else if !ir.Dominates(idom, st.Parent, ld.Parent) {
				ok = false
				break
			}
			if !ld.Ty.Equal(st.Args[0].Type()) {
				ok = false
				break
			}
		}
		if ok {
			return a
		}
	}
	return nil
}

// promoteAlloca replaces every load of a single-store dominating
// alloca with the stored value, then deletes the store and alloca.
func promoteAlloca(f *ir.Function) bool {
	a := findPromotable(f)
	if a == nil {
		return false
	}
	var store *ir.Instr
	var loads []*ir.Instr
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpStore:
			if in.Args[1] == ir.Value(a) {
				store = in
			}
		case ir.OpLoad:
			if in.Args[0] == ir.Value(a) {
				loads = append(loads, in)
			}
		}
	})
	if store == nil {
		return false
	}
	for _, ld := range loads {
		ir.ReplaceAllUses(f, ld, store.Args[0])
		ir.RemoveInstr(ld)
	}
	ir.RemoveInstr(store)
	ir.RemoveInstr(a)
	return true
}
