# Verification tiers for veriopt.
#
# tier1 is the repo's baseline gate: everything builds, all tests
# pass. tier2 adds static analysis and the race detector over the
# concurrent verification engine and worker pools (vcache, parallel
# Evaluate, parallel GRPO steps).

GO ?= go

.PHONY: all tier1 tier2 bench bench-workers

all: tier1 tier2

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Single- vs multi-worker evaluation and GRPO-step deltas (recorded
# in EXPERIMENTS.md).
bench-workers:
	$(GO) test -run xxx -bench 'Workers[0-9]' -benchtime 5x .
