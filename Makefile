# Verification tiers for veriopt.
#
# tier1 is the repo's baseline gate: everything builds, all tests
# pass. tier2 adds the lint tier (static analysis + formatting) and
# the race detector over the concurrent verification engine and
# worker pools (par.For, oracle stack, parallel Evaluate, parallel
# GRPO steps).

GO ?= go

.PHONY: all tier1 tier2 lint serve-smoke resume-smoke store-smoke cluster-smoke passes-smoke load-smoke bench bench-workers bench-solver bench-store bench-cluster bench-passes bench-load

all: tier1 tier2

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2: lint serve-smoke resume-smoke store-smoke cluster-smoke passes-smoke load-smoke
	$(GO) test -race ./...

# Serving-layer acceptance gate: >=100 concurrent /v1/verify requests
# through the bounded queue (200 or explicit 429, never a hang),
# oracle hit rate + queue depth on /metrics, goroutine-clean drain.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./internal/server

# Durable-runs acceptance gate: train, kill mid-run (twice, at
# different depths), resume from the checkpoint, and require the final
# Model-Latency bytes to equal an uninterrupted run's.
resume-smoke:
	$(GO) test -run TestResumeSmoke -count=1 ./internal/pipeline

# Tiered-storage acceptance gate: fill a -store-dir past the hot
# tier's bound over HTTP, restart the server on the same directory
# behind a failing base verifier, and require every previously-proved
# pair answered from disk with zero solver runs while the in-memory
# tier stays under its entry bound.
store-smoke:
	$(GO) test -run TestStoreSmoke -count=1 ./internal/server

# Cluster acceptance gate: real worker processes behind a real
# coordinator process. Requires >= 1.7x throughput at 2 replicas and
# >= 3x at 4 (latency-bound workload via -sim-delay), hedged p99 well
# under the unhedged p99 on a skewed-latency fleet, and zero
# accepted-work loss across a mid-run SIGKILL of one replica followed
# by automatic ring healing. Also refreshes BENCH_cluster.json.
cluster-smoke:
	CLUSTER_SMOKE=1 BENCH_CLUSTER_OUT=$(CURDIR)/BENCH_cluster.json \
	$(GO) test -run TestClusterSmoke -count=1 -v ./internal/cluster

# Pass-ordering workload acceptance gate: tiny corpus, short sequence-
# policy training run, beam baseline. Requires every emitted sequence
# output to be oracle-verified Equivalent (independently re-proven),
# zero fallbacks, and the beam baseline to strictly beat the fixed
# instcombine pipeline on geomean latency.
passes-smoke:
	$(GO) test -run TestPassesSmoke -count=1 ./internal/pipeline

# Load acceptance gate: a real `veriopt serve` process driven through
# all five built-in traffic mixes (hot-repeat, all-distinct,
# deadline-heavy, malformed-ir, mixed), each graded against its SLO.
# Fails on any shed-rate/hit-rate/canceled-fraction violation, any
# 5xx, or any worker panic (a malformed-IR body must never take down
# a worker).
load-smoke:
	LOAD_SMOKE=1 $(GO) test -run TestLoadSmoke -count=1 -v ./internal/loadgen

# lint fails on any vet diagnostic or unformatted file.
lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$fmtout"; \
		exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# Single- vs multi-worker evaluation and GRPO-step deltas (recorded
# in EXPERIMENTS.md).
bench-workers:
	$(GO) test -run xxx -bench 'Workers[0-9]' -benchtime 5x .

# Live solver wall on the cold-cache workloads, written to
# BENCH_solver.json (quoted in EXPERIMENTS.md). The pre-PR baseline
# walls below were measured from a git worktree at BASELINE_COMMIT
# (the incremental-session solver cannot be switched back to the old
# code at runtime): the same 48-pair workload via a copy of
# solver_bench_test.go, and the cold quickstart train
# (train -n 40 -stage1 2 -stage2 4 -stage3 3), median of 3.
# Re-measure with: git worktree add /tmp/base $(BASELINE_COMMIT).
BASELINE_COMMIT   = 266c0fe
BASELINE_BENCH_NS = 92094564
BASELINE_TRAIN_NS = 493000000
bench-solver:
	BENCH_SOLVER_OUT=$(CURDIR)/BENCH_solver.json \
	BENCH_SOLVER_BASELINE_COMMIT=$(BASELINE_COMMIT) \
	BENCH_SOLVER_BASELINE_BENCH_NS=$(BASELINE_BENCH_NS) \
	BENCH_SOLVER_BASELINE_TRAIN_NS=$(BASELINE_TRAIN_NS) \
	$(GO) test -run TestSolverWallBench -count=1 -v .

# Verdict-store micro-benchmark: append throughput, read-hit/-miss
# latency, replay wall, and the writer-visible compaction pause,
# written to BENCH_vstore.json (quoted in EXPERIMENTS.md).
bench-store:
	BENCH_VSTORE_OUT=$(CURDIR)/BENCH_vstore.json \
	$(GO) test -run TestStoreBench -count=1 -v ./internal/vstore

# Cluster fan-out benchmark: 1/2/4-replica throughput plus hedged vs
# unhedged latency quantiles, written to BENCH_cluster.json (quoted in
# EXPERIMENTS.md). Same harness as cluster-smoke.
bench-cluster: cluster-smoke

# Pass-ordering workload benchmark: the four-way geomean latency table
# (fixed/greedy/beam/policy), the search's oracle traffic, and the
# cold-vs-warm solver-run split (warm re-evaluation must perform zero
# solver runs), written to BENCH_passes.json (quoted in EXPERIMENTS.md).
bench-passes:
	BENCH_PASSES_OUT=$(CURDIR)/BENCH_passes.json \
	$(GO) test -run TestPassesBench -count=1 -v ./internal/pipeline

# Load benchmark: same harness as load-smoke, plus the per-mix /
# per-scenario p50/p99/shed/hit-rate report written to BENCH_load.json
# (quoted in EXPERIMENTS.md).
bench-load:
	BENCH_LOAD_OUT=$(CURDIR)/BENCH_load.json \
	$(GO) test -run TestLoadSmoke -count=1 -v ./internal/loadgen
